//! Time sources for the cluster runtime.
//!
//! Every sleep and receive deadline in the runtime consumes time through
//! the [`Clock`] trait instead of calling `std::time` directly: the
//! production implementation ([`RealClock`]) is wall-clock time, while the
//! deterministic simulator (`cluster::sim`) substitutes a virtual clock so
//! chaos delays, retransmission timeouts, and the barrier backstop cost
//! zero wall-clock and replay identically from a seed.
//!
//! This module is the **only** place in `cluster`/`core` allowed to touch
//! `Instant`/`thread::sleep` directly — the clock-hygiene lint (xtask L5)
//! enforces the boundary.

use std::sync::Arc;
// lint:allow(determinism): the clock module is the audited wall-clock boundary
use std::time::{Duration, Instant};

/// A monotonic time source plus a way to spend time on it.
///
/// `now_ns` is nanoseconds since an arbitrary per-run epoch (process start
/// for the real clock, zero for the simulated one); it is only ever used
/// for durations, never as an absolute timestamp.  `sleep` takes the
/// calling worker's rank so the simulated implementation can park exactly
/// that task on its virtual-time queue.
pub trait Clock: Send + Sync {
    /// Nanoseconds elapsed since the clock's epoch.
    fn now_ns(&self) -> u64;

    /// Blocks worker `rank` for `d` (virtual time under simulation).
    fn sleep(&self, rank: usize, d: Duration);
}

/// The production clock: a monotonic reading anchored at construction,
/// and real `thread::sleep`s.
pub struct RealClock {
    // lint:allow(determinism): monotonic epoch for deadline bookkeeping only
    epoch: Instant,
}

impl RealClock {
    /// A clock whose epoch is "now".
    pub fn new() -> Self {
        RealClock {
            // lint:allow(determinism): monotonic epoch for deadline bookkeeping only
            epoch: Instant::now(),
        }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for RealClock {
    fn now_ns(&self) -> u64 {
        // Saturate instead of wrapping: 2^64 ns ≈ 584 years of uptime.
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn sleep(&self, _rank: usize, d: Duration) {
        std::thread::sleep(d);
    }
}

/// A driver-side virtual clock: `sleep` advances `now_ns` instantly
/// instead of blocking.  The supervision layer's heal backoff routes
/// through this under test, so an exponential-backoff ladder that would
/// cost seconds of wall-clock replays in microseconds while still being
/// *accounted* — `now_ns` reflects every nanosecond spent.
///
/// Unlike the simulator's clock (which parks exactly one worker task on a
/// scheduler queue), this clock has no scheduler: it serves the *driver*
/// thread, which sleeps between whole cluster runs, outside any `SimNet`.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now_ns: std::sync::atomic::AtomicU64,
}

impl VirtualClock {
    /// A virtual clock starting at zero.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Clock for VirtualClock {
    fn now_ns(&self) -> u64 {
        self.now_ns.load(std::sync::atomic::Ordering::SeqCst)
    }

    fn sleep(&self, _rank: usize, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.now_ns
            .fetch_add(ns, std::sync::atomic::Ordering::SeqCst);
    }
}

/// Shared handle type the runtime threads carry.
pub type SharedClock = Arc<dyn Clock>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_spends_time_without_blocking() {
        let c = VirtualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.sleep(0, Duration::from_secs(600)); // ten virtual minutes, no wall-clock
        assert_eq!(c.now_ns(), 600_000_000_000);
        c.sleep(3, Duration::from_nanos(5));
        assert_eq!(c.now_ns(), 600_000_000_005);
    }

    #[test]
    fn real_clock_is_monotone_and_sleeps() {
        let c = RealClock::new();
        let a = c.now_ns();
        c.sleep(0, Duration::from_millis(2));
        let b = c.now_ns();
        assert!(b >= a + 1_000_000, "slept 2ms but advanced {}ns", b - a);
    }
}

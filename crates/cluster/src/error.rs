//! Typed failures of the simulated cluster.
//!
//! The seed runtime treated every fault as a panic: a crashed worker
//! poisoned `join()` while its peers blocked forever in `recv`.  This
//! module gives faults a type so they can propagate — a failing worker
//! fans an encoded [`ClusterError`] out to every peer (the abort
//! protocol in `runtime`), and [`Cluster::run`](crate::Cluster::run)
//! surfaces the originating rank and cause instead of deadlocking.
//!
//! Errors cross worker boundaries as messages, so they carry owned data
//! and ship in a dependency-free binary encoding (`encode`/`decode`).

use std::fmt;

/// Why a cluster operation failed.
///
/// Once a worker observes any of these, its [`WorkerCtx`](crate::WorkerCtx)
/// is poisoned: every later communication attempt returns the same error.
/// This mirrors MPI semantics — a communicator that lost a member is dead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// A worker panicked, was crashed by fault injection, or its inbound
    /// channel vanished.  `rank` is the *failing* worker, which is not
    /// necessarily the rank that reports the error.
    PeerCrashed {
        /// Rank of the worker that failed.
        rank: usize,
        /// Panic message or injected-fault description.
        cause: String,
    },
    /// A receive exceeded its deadline (either an explicit
    /// `recv_timeout` or the run's default timeout backstop).
    Timeout {
        /// Rank that was waiting.
        rank: usize,
        /// Rank it was waiting for.
        src: usize,
        /// Message tag it was waiting for.
        tag: u64,
        /// How long it waited, in milliseconds.
        waited_ms: u64,
    },
    /// A payload arrived with the wrong variant — a protocol bug that the
    /// seed runtime turned into a receive-path panic.
    TypeMismatch {
        /// The variant the receiver asked for (`"F64"`, `"U64"`, …).
        expected: String,
        /// The variant that actually arrived.
        found: String,
    },
    /// Collective buffers disagreed in length across ranks.
    SizeMismatch {
        /// Rank that contributed the odd buffer (best-effort attribution:
        /// lengths are compared against the root's buffer).
        rank: usize,
        /// Element count the collective expected.
        expected: usize,
        /// Element count actually contributed.
        found: usize,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::PeerCrashed { rank, cause } => {
                write!(f, "worker {rank} crashed: {cause}")
            }
            ClusterError::Timeout {
                rank,
                src,
                tag,
                waited_ms,
            } => write!(
                f,
                "worker {rank} timed out after {waited_ms}ms waiting for worker {src} (tag {tag})"
            ),
            ClusterError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected} payload, got {found}")
            }
            ClusterError::SizeMismatch {
                rank,
                expected,
                found,
            } => write!(
                f,
                "size mismatch: worker {rank} contributed {found} elements, collective expected {expected}"
            ),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Convenience alias for fallible cluster operations.
pub type ClusterResult<T> = std::result::Result<T, ClusterError>;

// ---- wire encoding ------------------------------------------------------
//
// Abort messages carry the originating error across worker channels.  The
// vendored serde_derive cannot handle struct enum variants, so the format
// is hand-rolled: one discriminant byte, then little-endian u64 fields,
// then length-prefixed UTF-8 strings.

fn push_u64(buf: &mut Vec<u8>, x: u64) {
    buf.extend_from_slice(&x.to_le_bytes());
}

fn push_str(buf: &mut Vec<u8>, s: &str) {
    push_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn read_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let bytes = buf.get(*pos..*pos + 8)?;
    *pos += 8;
    Some(u64::from_le_bytes(bytes.try_into().ok()?))
}

fn read_str(buf: &[u8], pos: &mut usize) -> Option<String> {
    let len = read_u64(buf, pos)? as usize;
    let bytes = buf.get(*pos..*pos + len)?;
    *pos += len;
    // lint:allow(alloc_hygiene): abort-message decoding — teardown path, the run is over
    String::from_utf8(bytes.to_vec()).ok()
}

impl ClusterError {
    /// Serialises the error for the abort fan-out message.
    pub(crate) fn encode(&self) -> Vec<u8> {
        // lint:allow(alloc_hygiene): abort-message encoding — teardown path, the run is over
        let mut buf = Vec::new();
        match self {
            ClusterError::PeerCrashed { rank, cause } => {
                buf.push(0);
                push_u64(&mut buf, *rank as u64);
                push_str(&mut buf, cause);
            }
            ClusterError::Timeout {
                rank,
                src,
                tag,
                waited_ms,
            } => {
                buf.push(1);
                push_u64(&mut buf, *rank as u64);
                push_u64(&mut buf, *src as u64);
                push_u64(&mut buf, *tag);
                push_u64(&mut buf, *waited_ms);
            }
            ClusterError::TypeMismatch { expected, found } => {
                buf.push(2);
                push_str(&mut buf, expected);
                push_str(&mut buf, found);
            }
            ClusterError::SizeMismatch {
                rank,
                expected,
                found,
            } => {
                buf.push(3);
                push_u64(&mut buf, *rank as u64);
                push_u64(&mut buf, *expected as u64);
                push_u64(&mut buf, *found as u64);
            }
        }
        buf
    }

    /// Inverse of [`ClusterError::encode`]; `None` on malformed input.
    pub(crate) fn decode(buf: &[u8]) -> Option<Self> {
        let kind = *buf.first()?;
        let mut pos = 1usize;
        match kind {
            0 => Some(ClusterError::PeerCrashed {
                rank: read_u64(buf, &mut pos)? as usize,
                cause: read_str(buf, &mut pos)?,
            }),
            1 => Some(ClusterError::Timeout {
                rank: read_u64(buf, &mut pos)? as usize,
                src: read_u64(buf, &mut pos)? as usize,
                tag: read_u64(buf, &mut pos)?,
                waited_ms: read_u64(buf, &mut pos)?,
            }),
            2 => Some(ClusterError::TypeMismatch {
                expected: read_str(buf, &mut pos)?,
                found: read_str(buf, &mut pos)?,
            }),
            3 => Some(ClusterError::SizeMismatch {
                rank: read_u64(buf, &mut pos)? as usize,
                expected: read_u64(buf, &mut pos)? as usize,
                found: read_u64(buf, &mut pos)? as usize,
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn variants() -> Vec<ClusterError> {
        vec![
            ClusterError::PeerCrashed {
                rank: 3,
                cause: "injected crash".into(),
            },
            ClusterError::Timeout {
                rank: 1,
                src: 2,
                tag: 99,
                waited_ms: 5000,
            },
            ClusterError::TypeMismatch {
                expected: "F64".into(),
                found: "Empty".into(),
            },
            ClusterError::SizeMismatch {
                rank: 0,
                expected: 10,
                found: 7,
            },
        ]
    }

    #[test]
    fn display_covers_all_variants() {
        for v in variants() {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        for v in variants() {
            assert_eq!(ClusterError::decode(&v.encode()), Some(v));
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(ClusterError::decode(&[]), None);
        assert_eq!(ClusterError::decode(&[200, 1, 2]), None);
        // Truncated PeerCrashed payload.
        assert_eq!(ClusterError::decode(&[0, 1, 2, 3]), None);
    }

    #[test]
    fn error_is_std_error() {
        fn takes(_: &dyn std::error::Error) {}
        takes(&ClusterError::PeerCrashed {
            rank: 0,
            cause: "x".into(),
        });
    }
}

//! Cluster cost model — the Spark-shaped overheads of the paper's testbed.
//!
//! The simulator executes on threads, so barrier/launch overheads are
//! microseconds rather than the tens-of-milliseconds Spark pays per task.
//! To reproduce the paper's Fig. 7 observation — "the startup costs of Spark
//! tasks dominate the running time when the datasets are small" — the
//! experiment harness converts *measured compute time + counted bytes* into
//! a modeled cluster time with this cost model.

use crate::wire::AllreduceAlgo;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Bytes the busiest rank moves (sent + received) for one allreduce of a
/// `bytes`-sized buffer under the given algorithm.
///
/// * **Flat** centralises at the root: it receives `world - 1` payloads and
///   broadcasts `world - 1` copies, `2(world-1)·bytes` at rank 0 while every
///   other rank moves only `2·bytes`.
/// * **Ring** pipelines chunks around a chain; every rank sends and receives
///   the full buffer once per wave, `2·bytes` regardless of `world`.
/// * **Halving** (recursive halving/doubling) exchanges geometrically
///   shrinking halves: `2·bytes·(world-1)/world` per rank.
pub fn allreduce_bytes_per_rank(world: usize, bytes: u64, algo: AllreduceAlgo) -> u64 {
    if world <= 1 {
        return 0;
    }
    let w = world as u64;
    match algo.resolve(world, bytes) {
        AllreduceAlgo::Flat => 2 * (w - 1) * bytes,
        AllreduceAlgo::Ring => 2 * bytes,
        AllreduceAlgo::Halving => 2 * bytes * (w - 1) / w,
        // resolve() never returns Auto.
        AllreduceAlgo::Auto => 2 * (w - 1) * bytes,
    }
}

/// Parameters of the modeled cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Fixed cost to launch one distributed stage (scheduling + task
    /// startup), paid once per stage regardless of data volume.
    pub stage_startup: Duration,
    /// Network bandwidth in bytes/second (paper: Gigabit Ethernet).
    pub bandwidth_bytes_per_sec: f64,
    /// One-way message latency paid per collective operation.
    pub collective_latency: Duration,
}

impl CostModel {
    /// A model shaped like the paper's testbed: Spark-ish 50 ms stage
    /// startup, Gigabit Ethernet (125 MB/s), 0.5 ms collective latency.
    pub fn spark_like() -> Self {
        CostModel {
            stage_startup: Duration::from_millis(50),
            bandwidth_bytes_per_sec: 125.0e6,
            collective_latency: Duration::from_micros(500),
        }
    }

    /// The paper's testbed, shrunk to match scaled-down datasets.
    ///
    /// The reproduction's datasets are 10²-10³× smaller than the paper's,
    /// so a full 50 ms Spark stage startup would dwarf every compute term
    /// and flatten all the contrasts the experiments exist to show.  This
    /// model scales the fixed overheads down (0.1 ms startup, 10 µs
    /// latency) and the bandwidth up (100 GbE) by roughly the same factor,
    /// restoring the paper's compute-to-overhead balance at the reduced
    /// scale — per-worker compute dominates, with task startup still
    /// visible on the smallest datasets (the Fig. 7 saturation).
    pub fn scaled_testbed() -> Self {
        CostModel {
            stage_startup: Duration::from_micros(100),
            bandwidth_bytes_per_sec: 12.5e9,
            collective_latency: Duration::from_micros(10),
        }
    }

    /// A zero-overhead model: modeled time equals measured compute time.
    pub fn free() -> Self {
        CostModel {
            stage_startup: Duration::ZERO,
            bandwidth_bytes_per_sec: f64::INFINITY,
            collective_latency: Duration::ZERO,
        }
    }

    /// Time to move `bytes` over the modeled network.
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        if self.bandwidth_bytes_per_sec.is_infinite() || bytes == 0 {
            return Duration::ZERO;
        }
        Duration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec)
    }

    /// Modeled wall-clock of one allreduce of a `bytes`-sized buffer:
    /// latency per sequential hop on the critical path plus the transfer
    /// time of the busiest rank's traffic.  Flat pays 2 hops (gather +
    /// broadcast) but moves `2(world-1)·bytes` through the root; ring pays
    /// `2(world-1)` pipelined hops moving only `2·bytes` per rank; halving
    /// pays `2·log₂(world)` hops.  This is the latency/bandwidth trade the
    /// [`AllreduceAlgo::resolve`] heuristic encodes.
    pub fn allreduce_time(&self, bytes: u64, world: usize, algo: AllreduceAlgo) -> Duration {
        if world <= 1 {
            return Duration::ZERO;
        }
        let hops = match algo.resolve(world, bytes) {
            AllreduceAlgo::Flat | AllreduceAlgo::Auto => 2,
            AllreduceAlgo::Ring => 2 * (world as u32 - 1),
            AllreduceAlgo::Halving => 2 * (usize::BITS - world.leading_zeros() - 1),
        };
        self.collective_latency * hops
            + self.transfer_time(allreduce_bytes_per_rank(world, bytes, algo))
    }

    /// Modeled wall-clock of a distributed phase: measured compute plus
    /// `stages` stage startups, `collectives` latencies, and the transfer
    /// time of `bytes`.
    pub fn phase_time(
        &self,
        compute: Duration,
        stages: u64,
        collectives: u64,
        bytes: u64,
    ) -> Duration {
        compute
            + self.stage_startup * stages as u32
            + self.collective_latency * collectives as u32
            + self.transfer_time(bytes)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::free()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_model_is_identity() {
        let m = CostModel::free();
        let c = Duration::from_millis(7);
        assert_eq!(m.phase_time(c, 10, 10, 1 << 30), c);
        assert_eq!(m.transfer_time(u64::MAX), Duration::ZERO);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let m = CostModel {
            stage_startup: Duration::ZERO,
            bandwidth_bytes_per_sec: 1000.0,
            collective_latency: Duration::ZERO,
        };
        assert_eq!(m.transfer_time(1000), Duration::from_secs(1));
        assert_eq!(m.transfer_time(0), Duration::ZERO);
        assert_eq!(m.transfer_time(500), Duration::from_millis(500));
    }

    #[test]
    fn spark_like_startup_dominates_small_work() {
        // The Fig. 7 effect: for tiny compute, stage startup is the bulk.
        let m = CostModel::spark_like();
        let t = m.phase_time(Duration::from_millis(1), 4, 0, 0);
        assert!(t >= Duration::from_millis(200));
    }

    #[test]
    fn ring_beats_flat_on_large_payloads() {
        // Big buffer, several ranks: flat funnels 2(w-1)·b through the
        // root while ring spreads the load, so modeled ring time wins
        // despite its longer hop chain.
        let m = CostModel::spark_like();
        let (world, bytes) = (8, 64 << 20);
        let flat = m.allreduce_time(bytes, world, AllreduceAlgo::Flat);
        let ring = m.allreduce_time(bytes, world, AllreduceAlgo::Ring);
        assert!(ring < flat, "ring {ring:?} vs flat {flat:?}");
        // Halving moves slightly less than ring and pays fewer hops.
        let halving = m.allreduce_time(bytes, world, AllreduceAlgo::Halving);
        assert!(halving <= ring);
    }

    #[test]
    fn flat_wins_tiny_payloads_and_auto_selects_it() {
        // Tiny buffer: latency dominates, and flat's 2 hops beat ring's
        // 2(w-1).  Auto resolves to Flat below the size threshold, so the
        // modeled times coincide.
        let m = CostModel::spark_like();
        let (world, bytes) = (8, 16);
        let flat = m.allreduce_time(bytes, world, AllreduceAlgo::Flat);
        let ring = m.allreduce_time(bytes, world, AllreduceAlgo::Ring);
        assert!(flat < ring, "flat {flat:?} vs ring {ring:?}");
        assert_eq!(m.allreduce_time(bytes, world, AllreduceAlgo::Auto), flat);
    }

    #[test]
    fn allreduce_bytes_per_rank_by_algorithm() {
        assert_eq!(allreduce_bytes_per_rank(1, 1000, AllreduceAlgo::Flat), 0);
        assert_eq!(allreduce_bytes_per_rank(4, 1000, AllreduceAlgo::Flat), 6000);
        assert_eq!(allreduce_bytes_per_rank(4, 1000, AllreduceAlgo::Ring), 2000);
        assert_eq!(
            allreduce_bytes_per_rank(4, 1000, AllreduceAlgo::Halving),
            1500
        );
        // Odd world: Halving resolves to Ring.
        assert_eq!(
            allreduce_bytes_per_rank(3, 1000, AllreduceAlgo::Halving),
            2000
        );
    }

    #[test]
    fn phase_time_adds_all_components() {
        let m = CostModel {
            stage_startup: Duration::from_millis(10),
            bandwidth_bytes_per_sec: 1.0e6,
            collective_latency: Duration::from_millis(1),
        };
        let t = m.phase_time(Duration::from_millis(5), 2, 3, 1_000_000);
        // 5 + 20 + 3 + 1000 ms
        assert_eq!(t, Duration::from_millis(1028));
    }
}

//! Wire formats and collective-algorithm selection.
//!
//! The exchange hot path ships factor-row blocks whose row sets are known
//! to both ends from the (plan-cached) route tables.  A flat `Payload::F64`
//! is already index-free, so a compressed frame can only win by shrinking
//! the *values*: the frame format pairs a delta+varint index block (cheap,
//! and an integrity check under fault injection) with an opt-in f32
//! downcast of the row payload.  The encoder is adaptive — it emits a
//! frame **only when the frame is strictly smaller** than the flat
//! payload, which makes two properties hold by construction:
//!
//! - with the downcast off, no frame ever flows (header + index bytes can
//!   only add to the flat f64 block), so the compressed path is
//!   bit-identical to the flat path;
//! - whenever a frame does flow, `wire < logical`, i.e. the compression
//!   ratio is strictly above 1.0 (debug-asserted at the accounting site).
//!
//! [`CommPolicy`] bundles the knobs the distributed driver plumbs down:
//! frame compression, the f32 downcast, and the allreduce algorithm.

use crate::comm::{BufferPool, Payload};
use crate::error::{ClusterError, ClusterResult};
use serde::{Deserialize, Serialize};

/// Frame flag: values are stored as little-endian `f32` (otherwise `f64`).
pub const FLAG_F32: u8 = 0b01;
/// Frame flag: the delta+varint row-index block is present.
pub const FLAG_INDICES: u8 = 0b10;
const KNOWN_FLAGS: u8 = FLAG_F32 | FLAG_INDICES;

/// Below this total payload volume (`payload_bytes × world`), the flat
/// gather+broadcast allreduce stays cheaper than setting up a ring: the
/// chain latency of `2(w−1)` hops dominates tiny reductions (scalars,
/// small Gram stacks on few workers).
pub const AUTO_RING_MIN_TOTAL_BYTES: u64 = 4096;

/// Allreduce algorithm for `try_allreduce_sum_with`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllreduceAlgo {
    /// Pick per call from payload size × worker count (flat for small
    /// reductions, ring otherwise).  Never selects halving: halving
    /// reassociates the sum and is opt-in only.
    #[default]
    Auto,
    /// Gather-to-root + broadcast.  Root pays `2(w−1)·b` bytes.
    Flat,
    /// Pipelined chain reduce + chain broadcast in rank order.  Every rank
    /// pays ≈`2·b` bytes, and the per-element summation order matches the
    /// flat path exactly, so results are bit-identical to `Flat`.
    Ring,
    /// Recursive-halving reduce-scatter + recursive-doubling allgather.
    /// Power-of-two worker counts only (falls back to `Ring` otherwise).
    /// Reassociates the floating-point sum: results agree with `Flat` only
    /// within rounding, which is why `Auto` never chooses it.
    Halving,
}

impl AllreduceAlgo {
    /// Resolves `Auto`/infeasible choices to the algorithm actually run for
    /// a `payload_bytes`-sized buffer across `world` ranks.  Never returns
    /// `Auto`.
    pub fn resolve(self, world: usize, payload_bytes: u64) -> AllreduceAlgo {
        match self {
            AllreduceAlgo::Auto => {
                if world >= 3
                    && payload_bytes.saturating_mul(world as u64) >= AUTO_RING_MIN_TOTAL_BYTES
                {
                    AllreduceAlgo::Ring
                } else {
                    AllreduceAlgo::Flat
                }
            }
            AllreduceAlgo::Halving if !world.is_power_of_two() => AllreduceAlgo::Ring,
            other => other,
        }
    }
}

/// Communication policy plumbed from the cluster configuration into the
/// worker bodies.  The default is safe-by-construction: compression is
/// armed but lossless (so it never actually fires — see the module docs),
/// and `Auto` keeps small-test traffic on the flat allreduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommPolicy {
    /// Allow the adaptive encoder to emit compressed row frames.
    pub compress: bool,
    /// Downcast exchanged factor rows to `f32` on the wire (bounded error;
    /// the distributed driver gates this on the divergence watchdog).
    pub downcast_f32: bool,
    /// Allreduce algorithm for Gram/loss reductions.
    pub allreduce: AllreduceAlgo,
}

impl Default for CommPolicy {
    fn default() -> Self {
        CommPolicy {
            compress: true,
            downcast_f32: false,
            allreduce: AllreduceAlgo::Auto,
        }
    }
}

impl CommPolicy {
    /// The seed-era baseline: no frames, flat allreduce everywhere.
    pub fn flat() -> Self {
        CommPolicy {
            compress: false,
            downcast_f32: false,
            allreduce: AllreduceAlgo::Flat,
        }
    }

    /// Sets whether compressed frames may be emitted.
    pub fn with_compression(mut self, on: bool) -> Self {
        self.compress = on;
        self
    }

    /// Sets the lossy f32 downcast of exchanged rows.
    pub fn with_downcast_f32(mut self, on: bool) -> Self {
        self.downcast_f32 = on;
        self
    }

    /// Sets the allreduce algorithm.
    pub fn with_allreduce(mut self, algo: AllreduceAlgo) -> Self {
        self.allreduce = algo;
        self
    }
}

/// Accounting sidecar for a compressed frame: what the message *would*
/// have cost flat, and how many rows were downcast.  Logical byte counters
/// record `logical_bytes`; the wire counters record the frame's actual
/// size, keeping compressed and flat runs comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireMeta {
    /// Flat-equivalent payload size (`rows × rank × 8`).
    pub logical_bytes: u64,
    /// Rows whose values were downcast to f32 in this frame.
    pub downcast_rows: u64,
}

/// Appends `x` as an LEB128 varint.
pub fn push_varint(buf: &mut Vec<u8>, mut x: u64) {
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint at `*pos`, advancing it.  `None` on truncation
/// or a value that does not fit in 64 bits.
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        let bits = (byte & 0x7f) as u64;
        if shift == 63 && bits > 1 {
            return None; // would overflow u64
        }
        x |= bits << shift;
        if byte & 0x80 == 0 {
            return Some(x);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Encodes a factor-row block as a self-describing frame:
///
/// ```text
/// [flags u8][varint n][varint rows[0]][varint Δrows[1..n]][values LE]
/// ```
///
/// `rows` must be strictly ascending (route tables are built that way), so
/// every delta is ≥ 1.  The index block is always written: it costs ~1
/// byte/row and lets the decoder verify the frame against its own route
/// table — an end-to-end integrity check under fault injection.
pub fn encode_frame(rows: &[u32], values: &[f64], downcast_f32: bool) -> Vec<u8> {
    debug_assert!(
        rows.windows(2).all(|w| w[0] < w[1]),
        "row routes must be strictly ascending"
    );
    let width = if downcast_f32 { 4 } else { 8 };
    // lint:allow(alloc_hygiene): byte frame for the optional compression path — the f64 pool cannot hold it, and the zero-alloc gram/exchange baseline runs with compression off
    let mut frame = Vec::with_capacity(2 + 2 * rows.len() + values.len() * width);
    let mut flags = FLAG_INDICES;
    if downcast_f32 {
        flags |= FLAG_F32;
    }
    frame.push(flags);
    push_varint(&mut frame, rows.len() as u64);
    let mut prev = 0u64;
    for (i, &row) in rows.iter().enumerate() {
        let row = row as u64;
        if i == 0 {
            push_varint(&mut frame, row);
        } else {
            push_varint(&mut frame, row - prev);
        }
        prev = row;
    }
    if downcast_f32 {
        for &v in values {
            frame.extend_from_slice(&(v as f32).to_le_bytes());
        }
    } else {
        for &v in values {
            frame.extend_from_slice(&v.to_le_bytes());
        }
    }
    frame
}

/// Adaptive frame encoder: returns a compressed frame for the row block
/// **iff** the policy allows it and the frame is strictly smaller than the
/// flat `Payload::F64` it replaces; `None` means "send flat".
pub fn maybe_compress(
    rows: &[u32],
    values: &[f64],
    policy: &CommPolicy,
) -> Option<(bytes::Bytes, WireMeta)> {
    if !policy.compress || rows.is_empty() {
        return None;
    }
    if !policy.downcast_f32 {
        // A lossless frame carries the same f64 block plus header and index
        // bytes, so it can never beat the flat payload; skip the encode.
        return None;
    }
    let logical = std::mem::size_of_val(values) as u64;
    let frame = encode_frame(rows, values, true);
    if (frame.len() as u64) < logical {
        Some((
            bytes::Bytes::from(frame),
            WireMeta {
                logical_bytes: logical,
                downcast_rows: rows.len() as u64,
            },
        ))
    } else {
        None
    }
}

fn malformed(detail: &str) -> ClusterError {
    ClusterError::TypeMismatch {
        expected: "row frame".into(),
        found: format!("malformed frame: {detail}"),
    }
}

/// Decodes one exchanged row block from `src` into a pool-drawn `Vec<f64>`
/// of `expected_rows.len() × rank` values.
///
/// Accepts either the flat `Payload::F64` (validated by length and handed
/// back as-is) or a compressed `Payload::Bytes` frame, whose row count and
/// index block are verified against the receiver's own route table —
/// tampered or truncated frames surface as typed errors, never panics.
///
/// # Errors
/// [`ClusterError::SizeMismatch`] when the row count disagrees with the
/// route table, [`ClusterError::TypeMismatch`] for malformed frames or
/// unexpected payload variants.
pub fn decode_rows(
    payload: Payload,
    src: usize,
    expected_rows: &[u32],
    rank: usize,
    pool: &mut BufferPool,
) -> ClusterResult<Vec<f64>> {
    let expected_len = expected_rows.len() * rank;
    match payload {
        Payload::F64(v) => {
            if v.len() != expected_len {
                return Err(ClusterError::SizeMismatch {
                    rank: src,
                    expected: expected_len,
                    found: v.len(),
                });
            }
            Ok(v)
        }
        Payload::Bytes(frame) => decode_frame(&frame, src, expected_rows, rank, pool),
        // lint:allow(alloc_hygiene): Vec::new of length 0 never touches the heap
        Payload::Empty if expected_len == 0 => Ok(Vec::new()),
        Payload::Empty => Err(ClusterError::SizeMismatch {
            rank: src,
            expected: expected_len,
            found: 0,
        }),
        other => Err(ClusterError::TypeMismatch {
            expected: "F64 or Bytes".into(),
            found: other.kind().into(),
        }),
    }
}

fn decode_frame(
    frame: &[u8],
    src: usize,
    expected_rows: &[u32],
    rank: usize,
    pool: &mut BufferPool,
) -> ClusterResult<Vec<f64>> {
    let mut pos = 0usize;
    let &flags = frame.first().ok_or_else(|| malformed("empty"))?;
    pos += 1;
    if flags & !KNOWN_FLAGS != 0 {
        return Err(malformed("unknown flags"));
    }
    if flags & FLAG_INDICES == 0 {
        return Err(malformed("missing index block"));
    }
    let n = read_varint(frame, &mut pos).ok_or_else(|| malformed("truncated row count"))? as usize;
    if n != expected_rows.len() {
        return Err(ClusterError::SizeMismatch {
            rank: src,
            expected: expected_rows.len(),
            found: n,
        });
    }
    let mut prev = 0u64;
    for (i, &expected) in expected_rows.iter().enumerate() {
        let v = read_varint(frame, &mut pos).ok_or_else(|| malformed("truncated index block"))?;
        let row = if i == 0 {
            v
        } else {
            prev.checked_add(v)
                .ok_or_else(|| malformed("index overflow"))?
        };
        if row != expected as u64 {
            return Err(malformed("indices diverge from route table"));
        }
        prev = row;
    }
    let downcast = flags & FLAG_F32 != 0;
    let width = if downcast { 4 } else { 8 };
    let need = n * rank * width;
    let body = &frame[pos..];
    if body.len() != need {
        return Err(malformed("value block length mismatch"));
    }
    let mut out = pool.take();
    out.reserve(n * rank);
    if downcast {
        for chunk in body.chunks_exact(4) {
            // 4-byte chunks_exact: the conversion cannot fail.
            let Ok(raw) = <[u8; 4]>::try_from(chunk) else {
                return Err(malformed("value block alignment"));
            };
            out.push(f32::from_le_bytes(raw) as f64);
        }
    } else {
        for chunk in body.chunks_exact(8) {
            let Ok(raw) = <[u8; 8]>::try_from(chunk) else {
                return Err(malformed("value block alignment"));
            };
            out.push(f64::from_le_bytes(raw));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_edge_values() {
        for x in [0u64, 1, 127, 128, 300, 1 << 20, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            push_varint(&mut buf, x);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(x), "value {x}");
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut pos = 0;
        assert_eq!(read_varint(&[0x80], &mut pos), None); // continuation, then EOF
                                                          // 11 continuation bytes: more than 64 bits of payload.
        let overlong = [0xffu8; 10];
        let mut pos = 0;
        assert_eq!(read_varint(&overlong, &mut pos), None);
    }

    #[test]
    fn frame_round_trips_lossless() {
        let rows = vec![0u32, 3, 4, 100, 65536];
        let values: Vec<f64> = (0..rows.len() * 3).map(|i| i as f64 * 0.37 - 5.0).collect();
        let frame = encode_frame(&rows, &values, false);
        let mut pool = BufferPool::new(false);
        let out = decode_frame(&frame, 1, &rows, 3, &mut pool).unwrap();
        assert_eq!(out, values);
    }

    #[test]
    fn frame_round_trips_downcast_at_f32_precision() {
        let rows = vec![2u32, 7, 9];
        let values = vec![1.0, -2.5, std::f64::consts::PI, 1e-8, 1e8, -0.125];
        let frame = encode_frame(&rows, &values, true);
        let mut pool = BufferPool::new(true);
        let out = decode_frame(&frame, 0, &rows, 2, &mut pool).unwrap();
        assert_eq!(out.len(), values.len());
        for (got, want) in out.iter().zip(&values) {
            assert_eq!(*got, *want as f32 as f64, "widening must be exact");
        }
    }

    #[test]
    fn dense_routes_cost_about_one_index_byte_per_row() {
        let rows: Vec<u32> = (1000..2000).collect();
        let values = vec![0.0f64; rows.len()];
        let frame = encode_frame(&rows, &values, true);
        // flags + count(2) + first index(2) + 999 unit deltas + 4000 value bytes
        assert!(frame.len() <= 1 + 2 + 2 + 999 + 4000);
    }

    #[test]
    fn maybe_compress_never_fires_without_downcast() {
        let rows: Vec<u32> = (0..64).collect();
        let values = vec![1.0f64; 64 * 8];
        let lossless = CommPolicy::default();
        assert!(lossless.compress && !lossless.downcast_f32);
        assert!(maybe_compress(&rows, &values, &lossless).is_none());
        let off = CommPolicy::flat();
        assert!(maybe_compress(&rows, &values, &off).is_none());
    }

    #[test]
    fn maybe_compress_wins_with_downcast_and_meta_reconciles() {
        let rows: Vec<u32> = (0..64).collect();
        let values = vec![0.5f64; 64 * 8];
        let policy = CommPolicy::default().with_downcast_f32(true);
        let (frame, meta) = maybe_compress(&rows, &values, &policy).expect("frame must win");
        assert_eq!(meta.logical_bytes, (values.len() * 8) as u64);
        assert_eq!(meta.downcast_rows, 64);
        assert!(
            (frame.len() as u64) < meta.logical_bytes,
            "ratio must exceed 1.0"
        );
        // Roughly 2x: 4-byte values plus ~1 byte/row of index overhead.
        let ratio = meta.logical_bytes as f64 / frame.len() as f64;
        assert!(ratio > 1.8, "ratio {ratio}");
    }

    #[test]
    fn maybe_compress_declines_degenerate_blocks() {
        let policy = CommPolicy::default().with_downcast_f32(true);
        assert!(maybe_compress(&[], &[], &policy).is_none());
        // One row of rank 1: 8 logical bytes vs 1+1+1+4 frame bytes — the
        // frame still wins here, but rank-0-wide rows cannot.
        let (frame, meta) = maybe_compress(&[5], &[1.0], &policy).expect("frame");
        assert!((frame.len() as u64) < meta.logical_bytes);
    }

    #[test]
    fn decode_rows_validates_flat_payloads() {
        let mut pool = BufferPool::new(false);
        let rows = vec![1u32, 2];
        let ok = decode_rows(Payload::F64(vec![0.0; 4]), 1, &rows, 2, &mut pool).unwrap();
        assert_eq!(ok.len(), 4);
        let err = decode_rows(Payload::F64(vec![0.0; 3]), 1, &rows, 2, &mut pool).unwrap_err();
        assert!(matches!(err, ClusterError::SizeMismatch { rank: 1, .. }));
        let err = decode_rows(Payload::U64(vec![1]), 0, &rows, 2, &mut pool).unwrap_err();
        assert!(matches!(err, ClusterError::TypeMismatch { .. }));
        let empty = decode_rows(Payload::Empty, 0, &[], 2, &mut pool).unwrap();
        assert!(empty.is_empty());
        let err = decode_rows(Payload::Empty, 2, &rows, 2, &mut pool).unwrap_err();
        assert!(matches!(err, ClusterError::SizeMismatch { rank: 2, .. }));
    }

    #[test]
    fn tampered_frames_surface_typed_errors() {
        let rows = vec![0u32, 5, 6];
        let values: Vec<f64> = (0..9).map(|i| i as f64).collect();
        let mut pool = BufferPool::new(false);
        let clean = encode_frame(&rows, &values, true);
        assert!(decode_frame(&clean, 0, &rows, 3, &mut pool).is_ok());
        // Flip every byte position in turn: decode must never panic, and
        // must never silently accept a frame with a corrupted index block
        // or length field (a corrupted value byte is the one undetectable
        // case, as on a real checksum-free transport).
        for i in 0..clean.len() {
            let mut bad = clean.clone();
            bad[i] ^= 0x55;
            let _ = decode_frame(&bad, 0, &rows, 3, &mut pool);
        }
        let mut truncated = clean.clone();
        truncated.pop();
        assert!(decode_frame(&truncated, 0, &rows, 3, &mut pool).is_err());
        let mut wrong_flags = clean.clone();
        wrong_flags[0] = 0b100;
        assert!(decode_frame(&wrong_flags, 0, &rows, 3, &mut pool).is_err());
        let mut no_indices = clean;
        no_indices[0] = FLAG_F32;
        assert!(decode_frame(&no_indices, 0, &rows, 3, &mut pool).is_err());
        // Wrong route table on the receiver: indices diverge.
        let other_rows = vec![0u32, 5, 7];
        let clean = encode_frame(&rows, &values, true);
        assert!(decode_frame(&clean, 0, &other_rows, 3, &mut pool).is_err());
    }

    #[test]
    fn auto_resolution_prefers_flat_for_small_reductions() {
        use AllreduceAlgo::*;
        // Small payloads and tiny worlds stay flat.
        assert_eq!(Auto.resolve(2, 1 << 20), Flat);
        assert_eq!(Auto.resolve(4, 8), Flat);
        assert_eq!(Auto.resolve(4, AUTO_RING_MIN_TOTAL_BYTES / 4), Ring);
        assert_eq!(Auto.resolve(8, 4096), Ring);
        // Explicit choices pass through; halving needs a power of two.
        assert_eq!(Flat.resolve(8, 1 << 20), Flat);
        assert_eq!(Ring.resolve(2, 8), Ring);
        assert_eq!(Halving.resolve(4, 8), Halving);
        assert_eq!(Halving.resolve(6, 8), Ring);
    }

    #[test]
    fn comm_policy_default_is_safe_and_serializes() {
        let p = CommPolicy::default();
        assert!(p.compress);
        assert!(!p.downcast_f32);
        assert_eq!(p.allreduce, AllreduceAlgo::Auto);
        let tuned = CommPolicy::flat()
            .with_compression(true)
            .with_downcast_f32(true)
            .with_allreduce(AllreduceAlgo::Ring);
        let json = serde_json::to_string(&tuned).unwrap();
        let back: CommPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(back, tuned);
    }
}

//! The loom barrier crash scenarios, ported onto [`SimNet`] seed sweeps.
//!
//! `loom_barrier.rs` explores every interleaving of a crash against
//! barrier traffic under the loom model checker (compiled only with
//! `--cfg loom`).  This suite replays the same four scenarios on the
//! deterministic simulator in the ordinary test build: each seed picks a
//! different (but reproducible) schedule, so a sweep probes the same
//! races continuously in CI without the loom toolchain.  The property is
//! unchanged — **no schedule of a crash against collective traffic may
//! strand a peer until the timeout backstop**; every survivor wakes with
//! the originating `PeerCrashed` error.
//!
//! The suite also covers the [`CrashAndRejoin`] sim fate the supervision
//! layer heals from: the crash fires exactly once, the retry run re-admits
//! the crashed rank after a virtual recovery delay, and the healed run is
//! bit-identical to a fault-free one.

use dismastd_cluster::{Cluster, ClusterError, ClusterOptions, FaultPlan, SimOptions, SimProbe};
use std::sync::Arc;
use std::time::Duration;

const WORLD: usize = 4;
const BARRIERS: u64 = 3;

/// Timeout backstop: generous enough (in virtual time) that a correct
/// abort never races it, so a surfaced `Timeout` is a stranded-peer bug.
const BACKSTOP: Duration = Duration::from_secs(20);

/// Seeds to sweep; `DISMASTD_DST_SEEDS` widens the sweep in CI.
fn seeds() -> Vec<u64> {
    let n = std::env::var("DISMASTD_DST_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8u64);
    (0..n).collect()
}

/// Runs `WORLD` workers through `BARRIERS` barriers on the simulator
/// under `plan`, returning the run's error.
fn sim_barrier_run(seed: u64, plan: FaultPlan) -> ClusterError {
    let opts = ClusterOptions::no_timeout()
        .with_timeout(BACKSTOP)
        .with_sim(SimOptions::from_seed(seed))
        .with_fault_plan(Arc::new(plan));
    Cluster::try_run_with_opts(WORLD, &opts, |ctx| {
        for _ in 0..BARRIERS {
            ctx.try_barrier()?;
        }
        Ok(())
    })
    .expect_err("an armed crash must fail the run")
}

fn assert_crashed_at(seed: u64, err: &ClusterError, ranks: &[usize]) {
    match err {
        ClusterError::PeerCrashed { rank, cause } => {
            assert!(
                ranks.contains(rank),
                "seed {seed}: expected the crash at one of {ranks:?}, got rank {rank} ({cause})"
            );
            assert!(
                cause.contains("fault injection"),
                "seed {seed}: expected the injected crash as root cause, got: {cause}"
            );
        }
        other => panic!("seed {seed}: expected PeerCrashed, got {other:?}"),
    }
}

/// Crash **before arriving**: worker 2 dies on entry to collective 0.
/// Rank 0 is blocked collecting tokens; ranks 1 and 3 await release.
#[test]
fn crash_before_arrive_wakes_all_peers_on_every_seed() {
    for seed in seeds() {
        let err = sim_barrier_run(seed, FaultPlan::seeded(11).crash_worker_at_collective(2, 0));
        assert_crashed_at(seed, &err, &[2]);
    }
}

/// Crash **after arriving**: worker 1 completes barrier 0 and dies
/// entering barrier 1, racing a barrier the peers believe is healthy.
#[test]
fn crash_after_arrive_aborts_the_next_barrier_on_every_seed() {
    for seed in seeds() {
        let err = sim_barrier_run(seed, FaultPlan::seeded(12).crash_worker_at_collective(1, 1));
        assert_crashed_at(seed, &err, &[1]);
    }
}

/// **Duplicate abort**: two crashes at the same collective race their
/// abort fan-outs; the run must settle on one root cause, not deadlock.
#[test]
fn duplicate_abort_is_idempotent_on_every_seed() {
    for seed in seeds() {
        let err = sim_barrier_run(
            seed,
            FaultPlan::seeded(13)
                .crash_worker_at_collective(1, 1)
                .crash_worker_at_collective(3, 1),
        );
        assert_crashed_at(seed, &err, &[1, 3]);
    }
}

/// The crash racing **user point-to-point traffic**: the survivor is
/// blocked on a receive that will never be served.  The abort fan-out —
/// not the simulator's deadlock detector, which would surface `Timeout`
/// — must wake it with the peer's error.
#[test]
fn crash_wakes_a_blocked_point_to_point_receive_on_every_seed() {
    for seed in seeds() {
        let opts = ClusterOptions::no_timeout()
            .with_timeout(BACKSTOP)
            .with_sim(SimOptions::from_seed(seed))
            .with_fault_plan(Arc::new(
                FaultPlan::seeded(14).crash_worker_at_collective(0, 0),
            ));
        let err = Cluster::try_run_with_opts(2, &opts, |ctx| {
            if ctx.rank() == 0 {
                ctx.try_barrier()?; // crashes here
                Ok(())
            } else {
                // Blocked on a message rank 0 will never send.
                ctx.try_recv(0, 9).map(|_| ())
            }
        })
        .expect_err("the armed crash must fail the run");
        assert_crashed_at(seed, &err, &[0]);
    }
}

// ---- the CrashAndRejoin fate ---------------------------------------------

/// The SPMD body healed runs are compared over: a few barriers and an
/// all-reduce whose result is exact in f64, so bit-identity is checkable.
fn body(ctx: &mut dismastd_cluster::WorkerCtx) -> dismastd_cluster::ClusterResult<f64> {
    let mut acc = 0.0;
    for round in 0..BARRIERS {
        acc += ctx.try_allreduce_sum_scalar((ctx.rank() as u64 + round) as f64)?;
        ctx.try_barrier()?;
    }
    Ok(acc)
}

/// The fate fires exactly once: the first run crashes rank 1 at its
/// `k`-th collective; a retry with the *same* `SimOptions` re-admits the
/// rank after a virtual recovery delay and completes with clean results.
#[test]
fn crash_and_rejoin_fires_once_then_heals_on_every_seed() {
    for seed in seeds() {
        let fate = SimOptions::from_seed(seed).with_crash_and_rejoin(1, 2, 50_000);
        assert!(fate.crash_rejoins[0].is_armed());

        // Run 1: the crash fires at rank 1's collective #2.
        let opts = ClusterOptions::default().with_sim(fate.clone());
        let err = Cluster::try_run_with_opts(3, &opts, body)
            .expect_err("the armed fate must fail the first run");
        match &err {
            ClusterError::PeerCrashed { rank, cause } => {
                assert_eq!(*rank, 1, "seed {seed}");
                assert!(cause.contains("crash-and-rejoin"), "seed {seed}: {cause}");
            }
            other => panic!("seed {seed}: expected PeerCrashed, got {other:?}"),
        }
        assert!(!fate.crash_rejoins[0].is_armed());

        // Run 2 (the respawn): the crash is consumed; rank 1 rejoins late
        // — parked in virtual sleep for the recovery delay — and the run
        // completes with the same results as a fault-free cluster.
        let probe = SimProbe::new();
        let retry = fate.clone().with_probe(Arc::clone(&probe));
        let opts = ClusterOptions::default().with_sim(retry);
        let (healed, _) = Cluster::try_run_with_opts(3, &opts, body)
            .expect("retry after the consumed crash must succeed");
        assert!(
            probe.virtual_ns() >= 50_000,
            "seed {seed}: the rejoin delay must be spent in virtual time \
             (virtual_ns = {})",
            probe.virtual_ns()
        );

        let clean_opts = ClusterOptions::default().with_sim(SimOptions::from_seed(seed));
        let (clean, _) = Cluster::try_run_with_opts(3, &clean_opts, body).unwrap();
        for (rank, (h, c)) in healed.iter().zip(&clean).enumerate() {
            assert_eq!(
                h.to_bits(),
                c.to_bits(),
                "seed {seed}: healed rank {rank} must be bit-identical to the clean run"
            );
        }
    }
}

/// The rejoin delay is consumed by exactly one run: a third run with the
/// same `SimOptions` starts rank 1 immediately.
#[test]
fn rejoin_delay_is_consumed_once() {
    let fate = SimOptions::from_seed(7).with_crash_and_rejoin(0, 0, 250_000);
    let opts = ClusterOptions::default().with_sim(fate.clone());
    Cluster::try_run_with_opts(2, &opts, body).expect_err("armed crash");

    let probe2 = SimProbe::new();
    let opts = ClusterOptions::default().with_sim(fate.clone().with_probe(Arc::clone(&probe2)));
    Cluster::try_run_with_opts(2, &opts, body).expect("first retry heals");
    assert!(
        probe2.virtual_ns() >= 250_000,
        "retry pays the rejoin delay"
    );

    let probe3 = SimProbe::new();
    let opts = ClusterOptions::default().with_sim(fate.clone().with_probe(Arc::clone(&probe3)));
    Cluster::try_run_with_opts(2, &opts, body).expect("later runs stay healthy");
    assert!(
        probe3.virtual_ns() < 250_000,
        "the rejoin delay must be spent once, not on every later run \
         (virtual_ns = {})",
        probe3.virtual_ns()
    );
}

//! Loom schedule-exploration model of the abortable barrier.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (run via
//! `cargo run -p dismastd-xtask -- audit --loom-only`).  Each scenario
//! arms a deterministic [`FaultPlan`] crash point and lets the loom
//! harness perturb the schedule at the runtime's coordination edges —
//! token sends, abort fan-outs, blocking receives, crash firing — across
//! many seeds.  The property under test is the abort protocol's safety
//! net: **no interleaving of a crash against barrier traffic may strand
//! a peer until the timeout backstop**; every survivor must wake with
//! the originating `PeerCrashed` error.
#![cfg(loom)]

use dismastd_cluster::{Cluster, ClusterError, ClusterOptions, FaultPlan};
use std::sync::Arc;
use std::time::{Duration, Instant};

const WORLD: usize = 4;
const BARRIERS: u64 = 3;

/// The timeout backstop: generous enough that a correct abort (which
/// takes microseconds) never races it, so any `Timeout` escaping the run
/// is a genuine stranded-peer bug, not schedule noise.
const BACKSTOP: Duration = Duration::from_secs(20);

/// Runs `WORLD` workers through `BARRIERS` barriers under `plan` and
/// returns the run's error.  Panics if the cluster succeeds (every
/// scenario arms at least one crash) or if a survivor was left to hit
/// the timeout backstop.
fn barrier_run(plan: FaultPlan) -> ClusterError {
    let opts = ClusterOptions::no_timeout()
        .with_timeout(BACKSTOP)
        .with_fault_plan(Arc::new(plan));
    let started = Instant::now();
    let err = Cluster::try_run_with_opts(WORLD, &opts, |ctx| {
        for _ in 0..BARRIERS {
            ctx.try_barrier()?;
        }
        Ok(())
    })
    .expect_err("an armed crash must fail the run");
    assert!(
        started.elapsed() < BACKSTOP,
        "peers must be woken by the abort fan-out, not the timeout backstop"
    );
    err
}

fn assert_crashed_at(err: &ClusterError, ranks: &[usize]) {
    match err {
        ClusterError::PeerCrashed { rank, cause } => {
            assert!(
                ranks.contains(rank),
                "expected the crash to originate at one of {ranks:?}, got rank {rank} ({cause})"
            );
            assert!(
                cause.contains("fault injection"),
                "expected the injected crash as root cause, got: {cause}"
            );
        }
        other => panic!("expected PeerCrashed, got {other:?}"),
    }
}

/// Crash **before arriving**: worker 2 dies on entry to collective 0,
/// before sending its arrive token.  Rank 0 is blocked collecting
/// tokens; ranks 1 and 3 are blocked awaiting release.  All must wake
/// with rank 2's error under every explored schedule.
#[test]
fn crash_before_arrive_wakes_all_peers() {
    loom::model(|| {
        let err = barrier_run(FaultPlan::seeded(11).crash_worker_at_collective(2, 0));
        assert_crashed_at(&err, &[2]);
    });
}

/// Crash **after arriving**: worker 1 completes barrier 0 (token sent,
/// release received) and dies entering barrier 1.  The crash now races
/// a barrier the peers believe is healthy; the abort must still win.
#[test]
fn crash_after_arrive_aborts_the_next_barrier() {
    loom::model(|| {
        let err = barrier_run(FaultPlan::seeded(12).crash_worker_at_collective(1, 1));
        assert_crashed_at(&err, &[1]);
    });
}

/// **Duplicate abort**: two workers crash at the same collective, so two
/// abort fan-outs race each other and every survivor receives a second
/// abort while already poisoned.  The run must settle on one of the two
/// root causes and never deadlock or double-panic.
#[test]
fn duplicate_abort_is_idempotent() {
    loom::model(|| {
        let err = barrier_run(
            FaultPlan::seeded(13)
                .crash_worker_at_collective(1, 1)
                .crash_worker_at_collective(3, 1),
        );
        assert_crashed_at(&err, &[1, 3]);
    });
}

/// The crash can also race **user point-to-point traffic** inside the
/// same schedule: the survivor blocked on a receive that will never be
/// served must get the peer's error, not its own timeout.
#[test]
fn crash_wakes_a_blocked_point_to_point_receive() {
    loom::model(|| {
        let opts = ClusterOptions::no_timeout()
            .with_timeout(BACKSTOP)
            .with_fault_plan(Arc::new(
                FaultPlan::seeded(14).crash_worker_at_collective(0, 0),
            ));
        let started = Instant::now();
        let err = Cluster::try_run_with_opts(2, &opts, |ctx| {
            if ctx.rank() == 0 {
                ctx.try_barrier()?; // crashes here
                Ok(())
            } else {
                // Blocked on a message rank 0 will never send.
                ctx.try_recv(0, 9).map(|_| ())
            }
        })
        .expect_err("the armed crash must fail the run");
        assert!(
            started.elapsed() < BACKSTOP,
            "receive must be woken by the abort"
        );
        assert_crashed_at(&err, &[0]);
    });
}

//! Medium-grain N-dimensional grid partitioning (Sec. IV-A2/IV-A3, Fig. 3-4).
//!
//! Per-mode slice partitions (from GTP or MTP) induce an N-dimensional grid
//! of cells over the tensor; every nonzero falls in exactly one cell.  Cells
//! are mapped onto workers by one of two strategies:
//!
//! * [`CellAssignment::BlockGrid`] (default) — the medium-grain layout of
//!   the paper (and of SPLATT's DMS-MG): the `M` workers form an
//!   `m_1 × … × m_N` grid with `Π m_n = M`, and cell `(c_1, …, c_N)` goes to
//!   worker `(⌊c_1 m_1 / p_1⌋, …)`.  Each worker's cells then reference only
//!   `I_n / m_n` factor rows per mode, which is what keeps the row-exchange
//!   volume sub-linear in `M`.
//! * [`CellAssignment::Scatter`] — max-min fit of cells onto workers by
//!   nnz, ignoring locality.  Best-possible load balance, worst-case
//!   communication; kept as an ablation of the locality/balance trade-off.
//!
//! Factor-matrix rows follow the tensor rows: each mode-`n` slice group is
//! owned by the worker holding the most nonzeros referencing it
//! (Sec. IV-A3's row-wise factor assignment).

use crate::{ModePartition, Partitioner};
use dismastd_tensor::{Result, SparseTensor, TensorError};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Strategy for mapping grid cells onto workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellAssignment {
    /// Locality-preserving medium-grain worker grid (the paper's layout).
    BlockGrid,
    /// Locality-blind max-min fit by cell nnz (ablation).
    Scatter,
}

/// A complete data-placement plan: per-mode partitions, the cell→worker map,
/// and per-mode factor-row ownership.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridPartition {
    mode_partitions: Vec<ModePartition>,
    num_workers: usize,
    /// Dense cell→worker map; cell id = Σ_k coord_k · stride_k.
    cell_workers: Vec<u32>,
    strides: Vec<usize>,
    /// `row_owners[mode][partition] = worker` owning those factor rows.
    row_owners: Vec<Vec<u32>>,
}

impl GridPartition {
    /// Builds the placement plan for `tensor` with the default
    /// locality-preserving assignment.
    ///
    /// * `partitioner` — GTP or MTP, applied independently per mode;
    /// * `parts_per_mode[n]` — the paper's `p_n`;
    /// * `num_workers` — `M` worker nodes (≥ 1).
    ///
    /// # Errors
    /// Returns [`TensorError::InvalidArgument`] when `parts_per_mode` does
    /// not match the tensor order or `num_workers == 0`.
    pub fn build(
        tensor: &SparseTensor,
        partitioner: Partitioner,
        parts_per_mode: &[usize],
        num_workers: usize,
    ) -> Result<Self> {
        Self::build_with(
            tensor,
            partitioner,
            parts_per_mode,
            num_workers,
            CellAssignment::BlockGrid,
        )
    }

    /// [`GridPartition::build`] with an explicit cell-assignment strategy.
    ///
    /// # Errors
    /// As for [`GridPartition::build`].
    pub fn build_with(
        tensor: &SparseTensor,
        partitioner: Partitioner,
        parts_per_mode: &[usize],
        num_workers: usize,
        assignment: CellAssignment,
    ) -> Result<Self> {
        if parts_per_mode.len() != tensor.order() {
            return Err(TensorError::InvalidArgument(format!(
                "parts_per_mode has {} entries for an order-{} tensor",
                parts_per_mode.len(),
                tensor.order()
            )));
        }
        if num_workers == 0 {
            return Err(TensorError::InvalidArgument(
                "num_workers must be >= 1".into(),
            ));
        }

        // Per-mode slice partitions (Algorithms 2-3 applied mode by mode).
        let mut mode_partitions = Vec::with_capacity(tensor.order());
        for (mode, &p) in parts_per_mode.iter().enumerate() {
            let hist = tensor.slice_nnz(mode)?;
            mode_partitions.push(partitioner.partition(&hist, p));
        }
        Self::from_mode_partitions(tensor, mode_partitions, num_workers, assignment)
    }

    /// Builds the plan from explicit per-mode partitions (used by tests and
    /// by the streaming driver, which re-partitions only the complement).
    ///
    /// # Errors
    /// Returns an error if the partitions do not cover the tensor's shape.
    pub fn from_mode_partitions(
        tensor: &SparseTensor,
        mode_partitions: Vec<ModePartition>,
        num_workers: usize,
        assignment: CellAssignment,
    ) -> Result<Self> {
        if mode_partitions.len() != tensor.order() {
            return Err(TensorError::InvalidArgument(
                "one ModePartition per mode required".into(),
            ));
        }
        for (mode, mp) in mode_partitions.iter().enumerate() {
            if mp.num_slices() != tensor.shape()[mode] {
                return Err(TensorError::InvalidArgument(format!(
                    "mode {mode}: partition covers {} slices, tensor has {}",
                    mp.num_slices(),
                    tensor.shape()[mode]
                )));
            }
        }

        // Cell id strides (row-major over partition counts).
        let order = tensor.order();
        let mut strides = vec![1usize; order];
        for k in (0..order.saturating_sub(1)).rev() {
            strides[k] = strides[k + 1] * mode_partitions[k + 1].num_parts();
        }
        let num_cells = mode_partitions
            .iter()
            .map(ModePartition::num_parts)
            .product::<usize>()
            .max(1);

        // Count nnz per cell.
        let mut cell_nnz = vec![0u64; num_cells];
        for (idx, _) in tensor.iter() {
            let cell = cell_id(idx, &mode_partitions, &strides);
            cell_nnz[cell] += 1;
        }

        let cell_workers = match assignment {
            CellAssignment::BlockGrid => {
                assign_block_grid(&mode_partitions, &strides, num_cells, num_workers)
            }
            CellAssignment::Scatter => assign_scatter(&cell_nnz, num_workers),
        };

        // Factor-row ownership: for each (mode, partition) pick the worker
        // holding the most nonzeros whose mode-coordinate lands there.
        let mut row_owners = Vec::with_capacity(order);
        for mode in 0..order {
            let parts = mode_partitions[mode].num_parts();
            let mut weight = vec![0u64; parts * num_workers];
            for (cell, &nnz) in cell_nnz.iter().enumerate() {
                if nnz == 0 {
                    continue;
                }
                let coord = (cell / strides[mode]) % mode_partitions[mode].num_parts();
                let w = cell_workers[cell] as usize;
                weight[coord * num_workers + w] += nnz;
            }
            let owners: Vec<u32> = (0..parts)
                .map(|p| {
                    let row = &weight[p * num_workers..(p + 1) * num_workers];
                    let (best_w, best) =
                        row.iter().enumerate().fold((0usize, 0u64), |acc, (w, &v)| {
                            if v > acc.1 {
                                (w, v)
                            } else {
                                acc
                            }
                        });
                    if best == 0 {
                        (p % num_workers) as u32 // empty partition: round-robin
                    } else {
                        best_w as u32
                    }
                })
                .collect();
            row_owners.push(owners);
        }

        Ok(GridPartition {
            mode_partitions,
            num_workers,
            cell_workers,
            strides,
            row_owners,
        })
    }

    /// Number of workers `M`.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Tensor order.
    pub fn order(&self) -> usize {
        self.mode_partitions.len()
    }

    /// The mode-`n` slice partition.
    pub fn mode_partition(&self, mode: usize) -> &ModePartition {
        &self.mode_partitions[mode]
    }

    /// Worker that owns the nonzero at `idx`.
    #[inline]
    pub fn worker_of(&self, idx: &[usize]) -> usize {
        self.cell_workers[self.cell_of(idx)] as usize
    }

    /// Dense grid-cell id of the nonzero at `idx` (row-major over the
    /// per-mode partition counts).  Cells are the unit of MTTKRP-plan
    /// caching in the distributed driver: a cell whose nonzeros are
    /// unchanged between stream steps keeps its compiled kernel layout.
    #[inline]
    pub fn cell_of(&self, idx: &[usize]) -> usize {
        cell_id(idx, &self.mode_partitions, &self.strides)
    }

    /// Total number of grid cells (product of per-mode partition counts).
    pub fn num_cells(&self) -> usize {
        self.cell_workers.len()
    }

    /// Worker that owns the factor rows of the given mode partition.
    #[inline]
    pub fn part_owner(&self, mode: usize, part: usize) -> usize {
        self.row_owners[mode][part] as usize
    }

    /// Worker that owns factor row `slice` of `mode`.
    #[inline]
    pub fn row_owner(&self, mode: usize, slice: usize) -> usize {
        self.part_owner(mode, self.mode_partitions[mode].part_of(slice))
    }

    /// Per-worker nonzero loads for a tensor placed with this plan.
    pub fn worker_loads(&self, tensor: &SparseTensor) -> Vec<u64> {
        let mut loads = vec![0u64; self.num_workers];
        for (idx, _) in tensor.iter() {
            loads[self.worker_of(idx)] += 1;
        }
        loads
    }

    /// Per-mode count of factor rows whose owner differs between this plan
    /// and `other` — the rows an elastic membership change must migrate
    /// when the cluster rebalances from one placement to the other.
    ///
    /// Both plans must describe the same tensor shape (same order, same
    /// per-mode slice counts); the worker counts may differ — that is the
    /// point.
    ///
    /// # Errors
    /// Returns [`TensorError::InvalidArgument`] when the plans' orders or
    /// per-mode slice counts disagree.
    pub fn ownership_delta(&self, other: &GridPartition) -> Result<Vec<u64>> {
        if self.order() != other.order() {
            return Err(TensorError::InvalidArgument(format!(
                "ownership_delta: order mismatch ({} vs {})",
                self.order(),
                other.order()
            )));
        }
        let mut delta = Vec::with_capacity(self.order());
        for mode in 0..self.order() {
            let n = self.mode_partitions[mode].num_slices();
            let m = other.mode_partitions[mode].num_slices();
            if n != m {
                return Err(TensorError::InvalidArgument(format!(
                    "ownership_delta: mode {mode} has {n} slices vs {m}"
                )));
            }
            let mut moved = 0u64;
            for slice in 0..n {
                if self.row_owner(mode, slice) != other.row_owner(mode, slice) {
                    moved += 1;
                }
            }
            delta.push(moved);
        }
        Ok(delta)
    }
}

#[inline]
fn cell_id(idx: &[usize], mode_partitions: &[ModePartition], strides: &[usize]) -> usize {
    idx.iter()
        .zip(mode_partitions)
        .zip(strides)
        .map(|((&i, mp), &s)| mp.part_of(i) * s)
        .sum()
}

/// Factors `workers` into per-mode grid dimensions `m_n` with `Π m_n ≤ M`
/// as close to `M` as possible, never exceeding the partition count of a
/// mode.  Prime factors are assigned largest-first to the mode whose grid
/// dimension is currently smallest relative to its partition count.
fn worker_grid_dims(parts_per_mode: &[usize], workers: usize) -> Vec<usize> {
    let order = parts_per_mode.len();
    let mut dims = vec![1usize; order];
    for f in prime_factors_desc(workers) {
        // Pick the growable mode with the smallest current dimension,
        // preferring modes with more partitions on ties.
        let candidate = (0..order)
            .filter(|&n| dims[n] * f <= parts_per_mode[n].max(1))
            .min_by_key(|&n| (dims[n], Reverse(parts_per_mode[n])));
        match candidate {
            Some(n) => dims[n] *= f,
            None => break, // no mode can absorb this factor; leave idle workers
        }
    }
    dims
}

fn prime_factors_desc(mut n: usize) -> Vec<usize> {
    let mut factors = Vec::new();
    let mut d = 2usize;
    while d * d <= n {
        while n.is_multiple_of(d) {
            factors.push(d);
            n /= d;
        }
        d += 1;
    }
    if n > 1 {
        factors.push(n);
    }
    factors.sort_unstable_by_key(|&f| Reverse(f));
    factors
}

/// Medium-grain block assignment: worker grid `m_1 × … × m_N`, cell
/// `(c_1, …, c_N)` → worker coordinates `⌊c_n m_n / p_n⌋`.
fn assign_block_grid(
    mode_partitions: &[ModePartition],
    strides: &[usize],
    num_cells: usize,
    workers: usize,
) -> Vec<u32> {
    let parts: Vec<usize> = mode_partitions
        .iter()
        .map(ModePartition::num_parts)
        .collect();
    let dims = worker_grid_dims(&parts, workers);
    // Mixed-radix strides for worker coordinates.
    let order = dims.len();
    let mut wstrides = vec![1usize; order];
    for k in (0..order.saturating_sub(1)).rev() {
        wstrides[k] = wstrides[k + 1] * dims[k + 1];
    }
    (0..num_cells)
        .map(|cell| {
            let mut worker = 0usize;
            for n in 0..order {
                let p_n = parts[n].max(1);
                let c_n = (cell / strides[n]) % p_n;
                let w_n = (c_n * dims[n]) / p_n;
                worker += w_n * wstrides[n];
            }
            worker as u32
        })
        .collect()
}

/// Scatter assignment: max-min fit of cells onto workers by nnz (heaviest
/// cell to the lightest worker), empty cells round-robin.
fn assign_scatter(cell_nnz: &[u64], workers: usize) -> Vec<u32> {
    let mut cell_order: Vec<usize> = (0..cell_nnz.len()).collect();
    cell_order.sort_unstable_by_key(|&c| (Reverse(cell_nnz[c]), c));
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> =
        (0..workers as u32).map(|w| Reverse((0u64, w))).collect();
    let mut cell_workers = vec![0u32; cell_nnz.len()];
    for (i, &cell) in cell_order.iter().enumerate() {
        if cell_nnz[cell] == 0 {
            cell_workers[cell] = (i % workers) as u32;
            continue;
        }
        // The heap holds one entry per worker and every pop is re-pushed,
        // so it can never be empty here; the fallback keeps this path
        // panic-free under the crate-wide no-unwrap audit.
        let Reverse((load, w)) = heap.pop().unwrap_or(Reverse((0, 0)));
        cell_workers[cell] = w;
        heap.push(Reverse((load + cell_nnz[cell], w)));
    }
    cell_workers
}

#[cfg(test)]
mod tests {
    use super::*;
    use dismastd_tensor::SparseTensorBuilder;

    fn test_tensor() -> SparseTensor {
        let mut b = SparseTensorBuilder::new(vec![4, 4, 4]);
        // A diagonal plus some off-diagonal mass.
        for i in 0..4 {
            b.push(&[i, i, i], 1.0).unwrap();
        }
        b.push(&[0, 1, 2], 2.0).unwrap();
        b.push(&[3, 0, 1], -1.0).unwrap();
        b.push(&[1, 3, 0], 0.5).unwrap();
        b.push(&[2, 2, 0], 4.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn build_validates_arguments() {
        let t = test_tensor();
        assert!(GridPartition::build(&t, Partitioner::Mtp, &[2, 2], 2).is_err());
        assert!(GridPartition::build(&t, Partitioner::Mtp, &[2, 2, 2], 0).is_err());
        assert!(GridPartition::build(&t, Partitioner::Mtp, &[2, 2, 2], 2).is_ok());
    }

    #[test]
    fn every_nonzero_has_exactly_one_worker() {
        let t = test_tensor();
        for partitioner in [Partitioner::Gtp, Partitioner::Mtp] {
            for assignment in [CellAssignment::BlockGrid, CellAssignment::Scatter] {
                let g =
                    GridPartition::build_with(&t, partitioner, &[2, 2, 2], 3, assignment).unwrap();
                let loads = g.worker_loads(&t);
                assert_eq!(loads.iter().sum::<u64>(), t.nnz() as u64);
            }
        }
    }

    #[test]
    fn worker_count_one_takes_everything() {
        let t = test_tensor();
        let g = GridPartition::build(&t, Partitioner::Mtp, &[2, 2, 2], 1).unwrap();
        assert_eq!(g.worker_loads(&t), vec![t.nnz() as u64]);
        for (idx, _) in t.iter() {
            assert_eq!(g.worker_of(idx), 0);
        }
    }

    #[test]
    fn ownership_delta_counts_moved_rows() {
        let t = test_tensor();
        let g2 = GridPartition::build(&t, Partitioner::Mtp, &[2, 2, 2], 2).unwrap();
        // Same plan: nothing moves.
        assert_eq!(g2.ownership_delta(&g2).unwrap(), vec![0, 0, 0]);
        // Shrinking to one worker: every slice not already owned by worker
        // 0 must migrate, and the count is exact per mode.
        let g1 = GridPartition::build(&t, Partitioner::Mtp, &[2, 2, 2], 1).unwrap();
        let delta = g2.ownership_delta(&g1).unwrap();
        for (mode, moved) in delta.iter().enumerate() {
            let expected = (0..4).filter(|&s| g2.row_owner(mode, s) != 0).count() as u64;
            assert_eq!(*moved, expected, "mode {mode}");
        }
        // Mismatched shapes are a typed error, not a wrong count.
        let mut b = SparseTensorBuilder::new(vec![6, 6, 6]);
        b.push(&[5, 5, 5], 1.0).unwrap();
        let bigger = b.build().unwrap();
        let gb = GridPartition::build(&bigger, Partitioner::Mtp, &[2, 2, 2], 2).unwrap();
        assert!(g2.ownership_delta(&gb).is_err());
    }

    #[test]
    fn grid_dims_factor_workers() {
        assert_eq!(worker_grid_dims(&[15, 15, 15], 15), vec![5, 3, 1]);
        assert_eq!(worker_grid_dims(&[8, 8, 8], 8), vec![2, 2, 2]);
        assert_eq!(worker_grid_dims(&[12, 12, 12], 12), vec![3, 2, 2]);
        assert_eq!(worker_grid_dims(&[9, 9], 6), vec![3, 2]);
        assert_eq!(worker_grid_dims(&[4, 4, 4], 1), vec![1, 1, 1]);
        // A mode with few partitions cannot absorb more splits than it has
        // partitions; the 2s spread across all three modes.
        assert_eq!(worker_grid_dims(&[2, 16, 2], 8), vec![2, 2, 2]);
        // Once the small modes are saturated, the rest lands on the big one.
        assert_eq!(worker_grid_dims(&[2, 64, 2], 32), vec![2, 8, 2]);
        // Totally unabsorbable factors leave idle workers rather than panic.
        assert_eq!(worker_grid_dims(&[2, 2], 64), vec![2, 2]);
    }

    #[test]
    fn prime_factorisation() {
        assert_eq!(prime_factors_desc(1), Vec::<usize>::new());
        assert_eq!(prime_factors_desc(12), vec![3, 2, 2]);
        assert_eq!(prime_factors_desc(15), vec![5, 3]);
        assert_eq!(prime_factors_desc(7), vec![7]);
    }

    #[test]
    fn block_grid_preserves_locality() {
        // With a 2x2x1 worker grid over 4 partitions per mode, cells with
        // the same leading partition coordinates share a worker.
        let mut b = SparseTensorBuilder::new(vec![8, 8, 8]);
        for i in 0..8 {
            for j in 0..8 {
                b.push(&[i, j, (i + j) % 8], 1.0).unwrap();
            }
        }
        let t = b.build().unwrap();
        let g = GridPartition::build(&t, Partitioner::Gtp, &[4, 4, 4], 4).unwrap();
        // Workers referenced per mode-0 partition should be limited: each
        // mode-0 partition block maps to at most half the workers.
        for part_range in [0..2usize, 2..4usize] {
            let mut seen = std::collections::BTreeSet::new();
            for (idx, _) in t.iter() {
                let part = g.mode_partition(0).part_of(idx[0]);
                if part_range.contains(&part) {
                    seen.insert(g.worker_of(idx));
                }
            }
            assert!(
                seen.len() <= 2,
                "mode-0 block {part_range:?} scattered to {seen:?}"
            );
        }
    }

    #[test]
    fn scatter_balances_better_than_or_equal_block() {
        let mut b = SparseTensorBuilder::new(vec![12, 12, 12]);
        let mut v = 0.0;
        for i in 0..12 {
            for j in 0..12 {
                if (i + j) % 2 == 0 {
                    v += 1.0;
                    b.push(&[i, j, (i * j) % 12], v).unwrap();
                }
            }
        }
        let t = b.build().unwrap();
        let max_of = |assignment| {
            let g =
                GridPartition::build_with(&t, Partitioner::Mtp, &[4, 4, 4], 4, assignment).unwrap();
            g.worker_loads(&t).into_iter().max().unwrap()
        };
        assert!(max_of(CellAssignment::Scatter) <= max_of(CellAssignment::BlockGrid));
    }

    #[test]
    fn loads_are_reasonably_balanced() {
        let mut b = SparseTensorBuilder::new(vec![12, 12, 12]);
        let mut v = 0.0;
        for i in 0..12 {
            for j in 0..12 {
                if (i + j) % 2 == 0 {
                    v += 1.0;
                    b.push(&[i, j, (i * j) % 12], v).unwrap();
                }
            }
        }
        let t = b.build().unwrap();
        let g = GridPartition::build(&t, Partitioner::Mtp, &[4, 4, 4], 4).unwrap();
        let loads = g.worker_loads(&t);
        let mean = t.nnz() as f64 / 4.0;
        assert!(
            loads.iter().all(|&l| (l as f64) < 2.5 * mean),
            "loads {loads:?} vs mean {mean}"
        );
    }

    #[test]
    fn row_owner_consistent_with_part_owner() {
        let t = test_tensor();
        let g = GridPartition::build(&t, Partitioner::Gtp, &[2, 2, 2], 2).unwrap();
        for mode in 0..3 {
            for slice in 0..4 {
                let part = g.mode_partition(mode).part_of(slice);
                assert_eq!(g.row_owner(mode, slice), g.part_owner(mode, part));
                assert!(g.row_owner(mode, slice) < g.num_workers());
            }
        }
    }

    #[test]
    fn row_owner_holds_data_when_possible() {
        let mut b = SparseTensorBuilder::new(vec![2, 2, 2]);
        b.push(&[0, 0, 0], 1.0).unwrap();
        b.push(&[0, 1, 1], 1.0).unwrap();
        b.push(&[0, 1, 0], 1.0).unwrap();
        let t = b.build().unwrap();
        let g = GridPartition::build(&t, Partitioner::Mtp, &[2, 2, 2], 2).unwrap();
        let loads = g.worker_loads(&t);
        let owner = g.row_owner(0, 0);
        assert!(
            loads[owner] > 0,
            "owner {owner} of the only populated slice has no data"
        );
    }

    #[test]
    fn empty_tensor_is_placeable() {
        let t = SparseTensor::empty(vec![3, 3]).unwrap();
        let g = GridPartition::build(&t, Partitioner::Gtp, &[2, 2], 2).unwrap();
        assert_eq!(g.worker_loads(&t), vec![0, 0]);
        for mode in 0..2 {
            for slice in 0..3 {
                assert!(g.row_owner(mode, slice) < 2);
            }
        }
    }

    #[test]
    fn grid_deterministic() {
        let t = test_tensor();
        let a = GridPartition::build(&t, Partitioner::Mtp, &[2, 2, 2], 2).unwrap();
        let b = GridPartition::build(&t, Partitioner::Mtp, &[2, 2, 2], 2).unwrap();
        for (idx, _) in t.iter() {
            assert_eq!(a.worker_of(idx), b.worker_of(idx));
        }
    }
}

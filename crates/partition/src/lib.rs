//! # dismastd-partition
//!
//! Load-balancing tensor partitioners for DisMASTD (Sec. IV-A).
//!
//! The paper proves optimal load-balanced tensor partitioning NP-hard
//! (Theorem 1, reduction from PARTITION) and proposes two heuristics that
//! split every mode into `p_n` slice groups:
//!
//! * **GTP** ([`gtp::gtp`], Alg. 2) — greedy scan in slice order, cutting
//!   when the running nnz reaches the target `nnz/p_n`;
//! * **MTP** ([`mtp::mtp`], Alg. 3) — max-min fit: largest remaining slice
//!   goes to the currently lightest partition.
//!
//! [`optimal`] holds exact (exponential / pseudo-polynomial) solvers for the
//! same problem, usable on small inputs to quantify the heuristics' gap, and
//! [`grid`] assembles per-mode partitions into the medium-grain N-dimensional
//! grid the distributed runtime executes on (Fig. 3 / Fig. 4).

pub mod grid;
pub mod gtp;
pub mod mtp;
pub mod optimal;
pub mod stats;

pub use grid::{CellAssignment, GridPartition};
pub use gtp::gtp;
pub use mtp::mtp;
pub use optimal::{optimal_arbitrary, optimal_contiguous};
pub use stats::{BalanceStats, CellStats};

use serde::{Deserialize, Serialize};

/// Which heuristic partitioner to run — the GTP/MTP toggle that names the
/// paper's method variants (DisMASTD-GTP vs DisMASTD-MTP, Sec. V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Partitioner {
    /// Greedy Tensor Partitioning (Alg. 2).
    Gtp,
    /// Max-min fit Tensor Partitioning (Alg. 3).
    Mtp,
}

impl Partitioner {
    /// Runs the selected heuristic on a slice-nnz histogram.
    pub fn partition(self, slice_nnz: &[u64], num_parts: usize) -> ModePartition {
        match self {
            Partitioner::Gtp => gtp(slice_nnz, num_parts),
            Partitioner::Mtp => mtp(slice_nnz, num_parts),
        }
    }

    /// Short name used in experiment output ("GTP" / "MTP").
    pub fn name(self) -> &'static str {
        match self {
            Partitioner::Gtp => "GTP",
            Partitioner::Mtp => "MTP",
        }
    }
}

/// The partitioning of one tensor mode: a map from slice index to partition
/// id (`P_p^(n)` of Algorithms 2-3, stored inverted for O(1) lookup).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModePartition {
    num_parts: usize,
    /// `assignment[slice] = partition id`.
    assignment: Vec<u32>,
}

impl ModePartition {
    /// Builds a partition from an explicit assignment vector.
    ///
    /// # Panics
    /// Panics if any id is `>= num_parts` (programming error in a
    /// partitioner, not user input).
    pub fn from_assignment(num_parts: usize, assignment: Vec<u32>) -> Self {
        assert!(
            assignment.iter().all(|&p| (p as usize) < num_parts),
            "partition id out of range"
        );
        ModePartition {
            num_parts,
            assignment,
        }
    }

    /// Puts every slice in partition 0 (the trivial 1-way partition).
    pub fn trivial(num_slices: usize) -> Self {
        ModePartition {
            num_parts: 1,
            assignment: vec![0; num_slices],
        }
    }

    /// Number of partitions `p_n`.
    pub fn num_parts(&self) -> usize {
        self.num_parts
    }

    /// Number of slices `I_n`.
    pub fn num_slices(&self) -> usize {
        self.assignment.len()
    }

    /// Partition id of a slice.
    #[inline]
    pub fn part_of(&self, slice: usize) -> usize {
        self.assignment[slice] as usize
    }

    /// The raw slice→partition map.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Total nnz landing in each partition, given the slice histogram.
    pub fn loads(&self, slice_nnz: &[u64]) -> Vec<u64> {
        let mut loads = vec![0u64; self.num_parts];
        for (slice, &part) in self.assignment.iter().enumerate() {
            loads[part as usize] += slice_nnz[slice];
        }
        loads
    }

    /// Groups slices by partition (`P_p^(n)` in the algorithms' output form).
    pub fn groups(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.num_parts];
        for (slice, &part) in self.assignment.iter().enumerate() {
            groups[part as usize].push(slice);
        }
        groups
    }

    /// `true` when every partition occupies a contiguous slice range (always
    /// true for GTP output, generally false for MTP output).
    pub fn is_contiguous(&self) -> bool {
        let mut last_slice: Vec<Option<usize>> = vec![None; self.num_parts];
        for (slice, &part) in self.assignment.iter().enumerate() {
            let p = part as usize;
            if let Some(last) = last_slice[p] {
                if slice != last + 1 {
                    return false;
                }
            }
            last_slice[p] = Some(slice);
        }
        true
    }

    /// Balance statistics of the partition loads.
    pub fn balance(&self, slice_nnz: &[u64]) -> BalanceStats {
        BalanceStats::from_loads(&self.loads(slice_nnz))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_partition() {
        let p = ModePartition::trivial(4);
        assert_eq!(p.num_parts(), 1);
        assert_eq!(p.num_slices(), 4);
        assert!((0..4).all(|s| p.part_of(s) == 0));
        assert_eq!(p.loads(&[1, 2, 3, 4]), vec![10]);
        assert!(p.is_contiguous());
    }

    #[test]
    #[should_panic(expected = "partition id out of range")]
    fn from_assignment_validates() {
        ModePartition::from_assignment(2, vec![0, 2]);
    }

    #[test]
    fn loads_and_groups() {
        let p = ModePartition::from_assignment(2, vec![0, 1, 0, 1]);
        assert_eq!(p.loads(&[5, 1, 2, 3]), vec![7, 4]);
        assert_eq!(p.groups(), vec![vec![0, 2], vec![1, 3]]);
    }

    #[test]
    fn contiguity_detection() {
        assert!(ModePartition::from_assignment(2, vec![0, 0, 1, 1]).is_contiguous());
        assert!(!ModePartition::from_assignment(2, vec![0, 1, 0, 1]).is_contiguous());
        assert!(ModePartition::from_assignment(3, vec![0, 1, 1, 2]).is_contiguous());
        assert!(!ModePartition::from_assignment(2, vec![1, 0, 1, 1]).is_contiguous());
    }

    #[test]
    fn partitioner_enum_dispatch() {
        let hist = [3u64, 3, 3, 3];
        for p in [Partitioner::Gtp, Partitioner::Mtp] {
            let mp = p.partition(&hist, 2);
            assert_eq!(mp.num_parts(), 2);
            assert_eq!(mp.num_slices(), 4);
            assert!(!p.name().is_empty());
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn hist_strategy() -> impl Strategy<Value = Vec<u64>> {
        prop::collection::vec(0u64..50, 1..40)
    }

    proptest! {
        #[test]
        fn gtp_assigns_every_slice(hist in hist_strategy(), p in 1usize..8) {
            let mp = gtp(&hist, p);
            prop_assert_eq!(mp.num_slices(), hist.len());
            // Conservation: total load preserved.
            let total: u64 = hist.iter().sum();
            prop_assert_eq!(mp.loads(&hist).iter().sum::<u64>(), total);
            // GTP partitions are contiguous by construction.
            prop_assert!(mp.is_contiguous());
        }

        #[test]
        fn mtp_assigns_every_slice(hist in hist_strategy(), p in 1usize..8) {
            let mp = mtp(&hist, p);
            prop_assert_eq!(mp.num_slices(), hist.len());
            let total: u64 = hist.iter().sum();
            prop_assert_eq!(mp.loads(&hist).iter().sum::<u64>(), total);
        }

        #[test]
        fn mtp_max_load_bounded(hist in hist_strategy(), p in 1usize..8) {
            // Classic LPT-style bound: max load ≤ mean + max element.
            let mp = mtp(&hist, p);
            let loads = mp.loads(&hist);
            let total: u64 = hist.iter().sum();
            let maxel = hist.iter().copied().max().unwrap_or(0);
            let parts = mp.num_parts() as u64;
            let bound = total / parts + maxel + 1;
            prop_assert!(loads.iter().all(|&l| l <= bound));
        }

        #[test]
        fn optimal_contiguous_beats_gtp(
            hist in prop::collection::vec(0u64..30, 1..15),
            p in 1usize..5,
        ) {
            let opt = optimal_contiguous(&hist, p);
            let g = gtp(&hist, p);
            let opt_max = opt.loads(&hist).into_iter().max().unwrap_or(0);
            let gtp_max = g.loads(&hist).into_iter().max().unwrap_or(0);
            prop_assert!(opt_max <= gtp_max);
        }

        #[test]
        fn optimal_arbitrary_beats_mtp(
            hist in prop::collection::vec(0u64..30, 1..10),
            p in 1usize..4,
        ) {
            let opt = optimal_arbitrary(&hist, p);
            let m = mtp(&hist, p);
            let opt_max = opt.loads(&hist).into_iter().max().unwrap_or(0);
            let mtp_max = m.loads(&hist).into_iter().max().unwrap_or(0);
            prop_assert!(opt_max <= mtp_max);
        }

        #[test]
        fn optimal_arbitrary_beats_contiguous(
            hist in prop::collection::vec(0u64..30, 1..10),
            p in 1usize..4,
        ) {
            // Arbitrary assignment is a superset of contiguous assignment.
            let arb = optimal_arbitrary(&hist, p);
            let cont = optimal_contiguous(&hist, p);
            let arb_max = arb.loads(&hist).into_iter().max().unwrap_or(0);
            let cont_max = cont.loads(&hist).into_iter().max().unwrap_or(0);
            prop_assert!(arb_max <= cont_max);
        }
    }
}

//! Exact optimal partitioners — the NP-hard problem of Theorem 1.
//!
//! The paper reduces optimal load-balanced tensor partitioning to the
//! PARTITION problem; these solvers pay the exponential (or
//! pseudo-polynomial) price so tests and ablation benches can measure how
//! far GTP/MTP are from the true optimum on small inputs.  Never call these
//! on production-size histograms.

use crate::ModePartition;

/// Optimal **contiguous** partitioning: minimises the maximum partition load
/// over all ways of cutting the slice sequence into `num_parts` runs.
///
/// This is the restricted search space GTP operates in.  Dynamic program
/// over prefix sums, `O(I² · p)` time / `O(I · p)` space.
pub fn optimal_contiguous(slice_nnz: &[u64], num_parts: usize) -> ModePartition {
    let n = slice_nnz.len();
    if n == 0 {
        return ModePartition::from_assignment(num_parts.max(1), Vec::new());
    }
    let p = num_parts.clamp(1, n);
    // prefix[i] = sum of slices [0, i).
    let mut prefix = vec![0u64; n + 1];
    for (i, &v) in slice_nnz.iter().enumerate() {
        prefix[i + 1] = prefix[i] + v;
    }
    let seg = |a: usize, b: usize| prefix[b] - prefix[a]; // load of [a, b)

    // dp[k][i] = minimal max-load splitting the first i slices into k parts
    // (every part non-empty). cut[k][i] remembers the last boundary.
    let inf = u64::MAX;
    let mut dp = vec![vec![inf; n + 1]; p + 1];
    let mut cut = vec![vec![0usize; n + 1]; p + 1];
    dp[0][0] = 0;
    for k in 1..=p {
        for i in k..=n {
            // Last part covers [j, i); previous k-1 parts cover [0, j).
            for j in k - 1..i {
                if dp[k - 1][j] == inf {
                    continue;
                }
                let cand = dp[k - 1][j].max(seg(j, i));
                if cand < dp[k][i] {
                    dp[k][i] = cand;
                    cut[k][i] = j;
                }
            }
        }
    }
    // Reconstruct boundaries.
    let mut assignment = vec![0u32; n];
    let mut i = n;
    let mut k = p;
    while k > 0 {
        let j = cut[k][i];
        for a in assignment.iter_mut().take(i).skip(j) {
            *a = (k - 1) as u32;
        }
        i = j;
        k -= 1;
    }
    ModePartition::from_assignment(p, assignment)
}

/// Optimal **arbitrary-assignment** partitioning: minimises the maximum
/// partition load over *all* slice-to-partition maps — multiway number
/// partitioning, the exact problem of Theorem 1's reduction.
///
/// Branch-and-bound over slices in descending-load order with symmetry
/// breaking (a slice may open at most one new empty partition).  Exponential
/// in the worst case; intended for inputs of roughly ≤ 20 slices.
pub fn optimal_arbitrary(slice_nnz: &[u64], num_parts: usize) -> ModePartition {
    let n = slice_nnz.len();
    if n == 0 {
        return ModePartition::from_assignment(num_parts.max(1), Vec::new());
    }
    let p = num_parts.clamp(1, n);

    // Descending order accelerates pruning dramatically.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by_key(|&i| std::cmp::Reverse(slice_nnz[i]));

    // Seed the upper bound with MTP (always feasible).
    let seed = crate::mtp(slice_nnz, p);
    let mut best_assignment: Vec<u32> = seed.assignment().to_vec();
    let mut best_max = seed.loads(slice_nnz).iter().max().copied().unwrap_or(0);

    // Lower bound: ceil(total / p) and the largest single slice.
    let total: u64 = slice_nnz.iter().sum();
    let lower = total.div_ceil(p as u64).max(slice_nnz[order[0]]);
    if best_max == lower {
        return ModePartition::from_assignment(p, best_assignment);
    }

    let mut loads = vec![0u64; p];
    let mut assignment = vec![0u32; n];

    #[allow(clippy::too_many_arguments)]
    fn search(
        depth: usize,
        order: &[usize],
        slice_nnz: &[u64],
        loads: &mut [u64],
        assignment: &mut [u32],
        best_max: &mut u64,
        best_assignment: &mut [u32],
        lower: u64,
    ) {
        if *best_max == lower {
            return; // already optimal
        }
        if depth == order.len() {
            let cur = loads.iter().max().copied().unwrap_or(0);
            if cur < *best_max {
                *best_max = cur;
                best_assignment.copy_from_slice(assignment);
            }
            return;
        }
        let slice = order[depth];
        let w = slice_nnz[slice];
        let mut seen_empty = false;
        for part in 0..loads.len() {
            if loads[part] == 0 {
                // Symmetry breaking: trying one empty partition suffices.
                if seen_empty {
                    continue;
                }
                seen_empty = true;
            }
            if loads[part] + w >= *best_max {
                continue; // prune: cannot beat the incumbent
            }
            loads[part] += w;
            assignment[slice] = part as u32;
            search(
                depth + 1,
                order,
                slice_nnz,
                loads,
                assignment,
                best_max,
                best_assignment,
                lower,
            );
            loads[part] -= w;
        }
    }

    search(
        0,
        &order,
        slice_nnz,
        &mut loads,
        &mut assignment,
        &mut best_max,
        &mut best_assignment,
        lower,
    );
    ModePartition::from_assignment(p, best_assignment)
}

/// Decides the classic two-way PARTITION problem exactly (the NP-complete
/// problem of Theorem 1): can `values` be split into two subsets of equal
/// sum?  Pseudo-polynomial subset-sum DP, `O(n · total/2)`.
///
/// Exposed so tests can tie the optimal-partitioning machinery back to the
/// decision problem in the paper's proof.
pub fn two_way_partition_exists(values: &[u64]) -> bool {
    let total: u64 = values.iter().sum();
    if !total.is_multiple_of(2) {
        return false;
    }
    let half = (total / 2) as usize;
    let mut reachable = vec![false; half + 1];
    reachable[0] = true;
    for &v in values {
        let v = v as usize;
        if v > half {
            continue;
        }
        for s in (v..=half).rev() {
            if reachable[s - v] {
                reachable[s] = true;
            }
        }
    }
    reachable[half]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_dp_known_answer() {
        // [1,2,3,4,5] into 2: best contiguous split is [1,2,3,4|5]? loads
        // 10/5 vs [1,2,3|4,5] = 6/9 vs [1,2,3,4|5] = 10/5... best max is 9?
        // Enumerate: cuts after i: (1,14) (3,12) (6,9) (10,5) → best max 9.
        let hist = [1u64, 2, 3, 4, 5];
        let mp = optimal_contiguous(&hist, 2);
        assert_eq!(mp.loads(&hist).into_iter().max().unwrap(), 9);
        assert!(mp.is_contiguous());
    }

    #[test]
    fn contiguous_dp_three_parts() {
        let hist = [2u64, 2, 2, 2, 2, 2];
        let mp = optimal_contiguous(&hist, 3);
        assert_eq!(mp.loads(&hist), vec![4, 4, 4]);
    }

    #[test]
    fn contiguous_handles_degenerate() {
        assert_eq!(optimal_contiguous(&[], 3).num_slices(), 0);
        let mp = optimal_contiguous(&[5], 4);
        assert_eq!(mp.num_parts(), 1);
    }

    #[test]
    fn arbitrary_finds_perfect_split() {
        // {8,7,6,5,4} total 30, p=2 → perfect 15/15 exists (8+7 / 6+5+4).
        let hist = [8u64, 7, 6, 5, 4];
        let mp = optimal_arbitrary(&hist, 2);
        let mut loads = mp.loads(&hist);
        loads.sort_unstable();
        assert_eq!(loads, vec![15, 15]);
    }

    #[test]
    fn arbitrary_beats_lpt_counterexample() {
        // Classic instance where LPT (=MTP) is suboptimal:
        // {3,3,2,2,2} into 2 parts: LPT gives 7/5, optimal is 6/6.
        let hist = [3u64, 3, 2, 2, 2];
        let m = crate::mtp(&hist, 2);
        let mtp_max = m.loads(&hist).into_iter().max().unwrap();
        assert_eq!(mtp_max, 7);
        let opt = optimal_arbitrary(&hist, 2);
        let opt_max = opt.loads(&hist).into_iter().max().unwrap();
        assert_eq!(opt_max, 6);
    }

    #[test]
    fn arbitrary_three_parts() {
        let hist = [9u64, 8, 7, 6, 5, 4, 3];
        let mp = optimal_arbitrary(&hist, 3);
        // total 42 → perfect 14 per part exists: {9,5} {8,6} {7,4,3}.
        assert_eq!(mp.loads(&hist).into_iter().max().unwrap(), 14);
    }

    #[test]
    fn two_way_partition_decision() {
        assert!(two_way_partition_exists(&[1, 5, 11, 5])); // {11} vs {1,5,5}
        assert!(!two_way_partition_exists(&[1, 2, 3, 5])); // total 11, odd
        assert!(!two_way_partition_exists(&[2, 2, 5])); // total 9
        assert!(two_way_partition_exists(&[])); // empty splits trivially
        assert!(two_way_partition_exists(&[3, 3]));
    }

    #[test]
    fn theorem1_reduction_consistency() {
        // If PARTITION says "yes", the optimal 2-way max load must equal
        // total/2, and vice versa — the equivalence in the proof of Thm 1.
        let instances: Vec<Vec<u64>> = vec![
            vec![1, 5, 11, 5],
            vec![3, 1, 1, 2, 2, 1],
            vec![7, 3, 2, 1],
            vec![10, 9, 1, 2],
        ];
        for inst in instances {
            let total: u64 = inst.iter().sum();
            let opt = optimal_arbitrary(&inst, 2);
            let max = opt.loads(&inst).into_iter().max().unwrap();
            let perfectly_split = total.is_multiple_of(2) && max == total / 2;
            assert_eq!(
                perfectly_split,
                two_way_partition_exists(&inst),
                "instance {inst:?}"
            );
        }
    }
}

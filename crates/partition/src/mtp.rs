//! Max-min fit Tensor Partitioning — Algorithm 3 of the paper.

use crate::ModePartition;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Max-min fit Tensor Partitioning (MTP, Alg. 3) over one mode.
///
/// Sorts the slices by nnz in **descending** order (line 3) and repeatedly
/// assigns the heaviest remaining slice to the partition with the smallest
/// current nnz (lines 5-7) — the classic LPT / max-min fit heuristic, which
/// is what makes MTP robust to skewed nonzero distributions (Table IV).
///
/// The partition chosen among equally light ones is the lowest-numbered one,
/// and ties between equally heavy slices are broken by slice index, so the
/// output is fully deterministic.
///
/// Degenerate inputs follow [`crate::gtp::gtp`]: `num_parts == 0` acts as 1
/// and `num_parts` is capped at the slice count.
///
/// ```
/// use dismastd_partition::mtp;
/// // A skewed histogram: the heavy slice gets its own partition.
/// let slice_nnz = [9u64, 1, 1, 1, 1, 1, 1, 1, 1, 1];
/// let partition = mtp(&slice_nnz, 2);
/// let mut loads = partition.loads(&slice_nnz);
/// loads.sort_unstable();
/// assert_eq!(loads, vec![9, 9]);
/// ```
pub fn mtp(slice_nnz: &[u64], num_parts: usize) -> ModePartition {
    let n_slices = slice_nnz.len();
    if n_slices == 0 {
        return ModePartition::from_assignment(num_parts.max(1), Vec::new());
    }
    let p = num_parts.clamp(1, n_slices);

    // Line 3: slice order by descending nnz, ties by ascending index.
    let mut order: Vec<usize> = (0..n_slices).collect();
    order.sort_unstable_by_key(|&i| (Reverse(slice_nnz[i]), i));

    // Min-heap over (load, partition id): pop = currently lightest partition.
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> =
        (0..p as u32).map(|id| Reverse((0u64, id))).collect();

    let mut assignment = vec![0u32; n_slices];
    for slice in order {
        // The heap holds one entry per partition and every pop is
        // re-pushed, so it can never be empty here (panic-free audit).
        let Reverse((load, id)) = heap.pop().unwrap_or(Reverse((0, 0)));
        assignment[slice] = id;
        heap.push(Reverse((load + slice_nnz[slice], id)));
    }
    ModePartition::from_assignment(p, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balances_classic_lpt_example() {
        // Slices 7,6,5,4,3,2 into 3 partitions: LPT gives loads 9,9,9.
        let hist = [7u64, 6, 5, 4, 3, 2];
        let mp = mtp(&hist, 3);
        let mut loads = mp.loads(&hist);
        loads.sort_unstable();
        assert_eq!(loads, vec![9, 9, 9]);
    }

    #[test]
    fn heaviest_slices_go_to_distinct_partitions() {
        let hist = [100u64, 90, 80, 1, 1, 1];
        let mp = mtp(&hist, 3);
        let p0 = mp.part_of(0);
        let p1 = mp.part_of(1);
        let p2 = mp.part_of(2);
        assert_ne!(p0, p1);
        assert_ne!(p1, p2);
        assert_ne!(p0, p2);
    }

    #[test]
    fn deterministic_tie_breaking() {
        let hist = [5u64, 5, 5, 5];
        let a = mtp(&hist, 2);
        let b = mtp(&hist, 2);
        assert_eq!(a, b);
        let mut loads = a.loads(&hist);
        loads.sort_unstable();
        assert_eq!(loads, vec![10, 10]);
    }

    #[test]
    fn handles_degenerate_inputs() {
        assert_eq!(mtp(&[], 4).num_slices(), 0);
        assert_eq!(mtp(&[3, 4], 0).num_parts(), 1);
        let mp = mtp(&[9, 9], 7);
        assert_eq!(mp.num_parts(), 2);
    }

    #[test]
    fn zero_heavy_mixture() {
        let hist = [0u64, 10, 0, 10, 0];
        let mp = mtp(&hist, 2);
        let mut loads = mp.loads(&hist);
        loads.sort_unstable();
        assert_eq!(loads, vec![10, 10]);
    }

    #[test]
    fn skewed_better_than_gtp() {
        // Zipf-ish histogram: the Table IV contrast.
        let hist: Vec<u64> = (1..=50).map(|i| 1000 / i as u64).collect();
        for p in [4usize, 8, 15] {
            let m = mtp(&hist, p).balance(&hist);
            let g = crate::gtp(&hist, p).balance(&hist);
            assert!(
                m.std_dev <= g.std_dev,
                "p={p}: MTP {} vs GTP {}",
                m.std_dev,
                g.std_dev
            );
        }
    }

    #[test]
    fn uniform_close_to_gtp() {
        // On uniform data both heuristics are near-optimal (Table IV,
        // Synthetic row).
        let hist = vec![10u64; 100];
        let m = mtp(&hist, 8).balance(&hist);
        let g = crate::gtp(&hist, 8).balance(&hist);
        // One slice of wiggle room per partition on each side.
        assert!((m.std_dev - g.std_dev).abs() <= 15.0);
        assert!(m.cv < 0.05);
    }

    #[test]
    fn output_is_generally_non_contiguous() {
        let hist = [10u64, 1, 10, 1];
        let mp = mtp(&hist, 2);
        // Heavy slices 0 and 2 land in different partitions, so each
        // partition mixes non-adjacent slices.
        assert_ne!(mp.part_of(0), mp.part_of(2));
    }
}

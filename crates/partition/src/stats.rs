//! Load-balance statistics for partitionings (Table IV of the paper).

use serde::{Deserialize, Serialize};

/// Summary statistics of per-partition loads.
///
/// The paper's Table IV reports "the standard deviation statistics of nnz in
/// tensor partitions"; because we run on scaled-down datasets we also expose
/// the scale-free *coefficient of variation* (`std_dev / mean`) and the
/// *imbalance factor* (`max / mean`, the quantity that actually bounds
/// distributed makespan).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BalanceStats {
    /// Number of partitions measured.
    pub parts: usize,
    /// Mean load.
    pub mean: f64,
    /// Population standard deviation of the loads.
    pub std_dev: f64,
    /// Coefficient of variation `std_dev / mean` (0 when mean is 0).
    pub cv: f64,
    /// Smallest load.
    pub min: u64,
    /// Largest load.
    pub max: u64,
    /// `max / mean` (1.0 is perfect balance; 0 when mean is 0).
    pub imbalance: f64,
}

impl BalanceStats {
    /// Computes statistics from raw per-partition loads.
    ///
    /// An empty slice yields all-zero statistics.
    pub fn from_loads(loads: &[u64]) -> Self {
        if loads.is_empty() {
            return BalanceStats {
                parts: 0,
                mean: 0.0,
                std_dev: 0.0,
                cv: 0.0,
                min: 0,
                max: 0,
                imbalance: 0.0,
            };
        }
        let n = loads.len() as f64;
        let mean = loads.iter().map(|&l| l as f64).sum::<f64>() / n;
        let var = loads
            .iter()
            .map(|&l| {
                let d = l as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        let std_dev = var.sqrt();
        let min = loads.iter().min().copied().unwrap_or(0);
        let max = loads.iter().max().copied().unwrap_or(0);
        BalanceStats {
            parts: loads.len(),
            mean,
            std_dev,
            cv: if mean > 0.0 { std_dev / mean } else { 0.0 },
            min,
            max,
            imbalance: if mean > 0.0 { max as f64 / mean } else { 0.0 },
        }
    }
}

/// Per-cell sparsity statistics — the inputs of the adaptive MTTKRP
/// layout selector (`dismastd-tensor::adaptive`).
///
/// The selector needs exactly two numbers per grid cell: how many
/// nonzeros it holds and how densely they populate the longest mode
/// (`slice_density` — the mean entries per slice, i.e. the expected run
/// length of the sorted-run layout).  Cells below the selector's density
/// threshold degenerate to one-entry runs, where the plan's counting sort
/// is pure overhead over the COO kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellStats {
    /// Nonzeros in the cell.
    pub nnz: usize,
    /// Longest mode of the cell's shape (at least 1).
    pub max_dim: usize,
    /// `nnz / max_dim`: mean entries per slice of the longest mode.
    pub slice_density: f64,
}

impl CellStats {
    /// Measures a cell from its shape and nonzero count.
    pub fn measure(shape: &[usize], nnz: usize) -> Self {
        let max_dim = shape.iter().copied().max().unwrap_or(1).max(1);
        CellStats {
            nnz,
            max_dim,
            slice_density: nnz as f64 / max_dim as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_stats_measure_density_over_the_longest_mode() {
        let s = CellStats::measure(&[10, 40, 5], 200);
        assert_eq!(s.nnz, 200);
        assert_eq!(s.max_dim, 40);
        assert_eq!(s.slice_density, 5.0);
        // Degenerate shapes never divide by zero.
        let z = CellStats::measure(&[], 0);
        assert_eq!(z.max_dim, 1);
        assert_eq!(z.slice_density, 0.0);
    }

    #[test]
    fn perfectly_balanced() {
        let s = BalanceStats::from_loads(&[10, 10, 10, 10]);
        assert_eq!(s.parts, 4);
        assert_eq!(s.mean, 10.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.cv, 0.0);
        assert_eq!(s.imbalance, 1.0);
        assert_eq!((s.min, s.max), (10, 10));
    }

    #[test]
    fn known_spread() {
        // loads 2 and 6: mean 4, population std dev 2.
        let s = BalanceStats::from_loads(&[2, 6]);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.std_dev, 2.0);
        assert_eq!(s.cv, 0.5);
        assert_eq!(s.imbalance, 1.5);
    }

    #[test]
    fn empty_and_zero_loads() {
        let e = BalanceStats::from_loads(&[]);
        assert_eq!(e.parts, 0);
        assert_eq!(e.std_dev, 0.0);
        let z = BalanceStats::from_loads(&[0, 0]);
        assert_eq!(z.mean, 0.0);
        assert_eq!(z.cv, 0.0);
        assert_eq!(z.imbalance, 0.0);
    }

    #[test]
    fn single_partition() {
        let s = BalanceStats::from_loads(&[42]);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.imbalance, 1.0);
    }
}

//! Greedy Tensor Partitioning — Algorithm 2 of the paper.

use crate::ModePartition;

/// Greedy Tensor Partitioning (GTP, Alg. 2) over one mode.
///
/// `slice_nnz` is the per-slice nonzero histogram `a_i^(n)`; `num_parts` is
/// `p_n`.  Slices are scanned **in index order** and greedily accumulated
/// until the running sum reaches the target `ω = nnz / p_n`.  When adding a
/// heavy slice overshoots the target, the boundary is placed on whichever
/// side of that slice balances better (lines 10-12); once `p_n - 1`
/// partitions are sealed, all remaining slices go to the last partition
/// (lines 16-17).
///
/// One deliberate fix to the published pseudo-code: when the comparison at
/// line 11 *excludes* slice `i` from the current partition, the pseudo-code
/// as printed resets `P ← ∅` and drops the slice; we instead start the next
/// partition with slice `i`, which is the only reading under which every
/// slice is assigned (an invariant the rest of the paper depends on).
///
/// Degenerate inputs are handled conservatively: `num_parts == 0` is treated
/// as 1, and requesting more partitions than slices caps `p_n` at the slice
/// count (trailing partitions would be structurally empty otherwise).  An
/// all-zero histogram (`total == 0`, e.g. an empty grid cell) would make the
/// target `ω = 0`, sending every slice down the overshoot branch so the
/// first `p_n - 1` partitions each seal a single slice and the last one
/// takes everything else; instead it is special-cased to an even contiguous
/// index split, which keeps all `p_n` partitions structurally non-empty.
///
/// ```
/// use dismastd_partition::gtp;
/// let slice_nnz = [5u64, 5, 5, 5, 5, 5];
/// let partition = gtp(&slice_nnz, 3);
/// assert_eq!(partition.loads(&slice_nnz), vec![10, 10, 10]);
/// ```
pub fn gtp(slice_nnz: &[u64], num_parts: usize) -> ModePartition {
    let n_slices = slice_nnz.len();
    if n_slices == 0 {
        return ModePartition::from_assignment(num_parts.max(1), Vec::new());
    }
    let p = num_parts.clamp(1, n_slices);
    let total: u64 = slice_nnz.iter().sum();
    if total == 0 {
        // All-zero histogram: loads are 0 whatever we do, so balance the
        // *slice counts* with an even contiguous split (every partition
        // non-empty since p <= n_slices) instead of degenerating into
        // singleton partitions via the overshoot branch.
        let assignment = (0..n_slices).map(|i| ((i * p) / n_slices) as u32).collect();
        return ModePartition::from_assignment(p, assignment);
    }
    // ω = nnz / p_n (line 2). Real-valued to avoid a systematic floor bias.
    let target = total as f64 / p as f64;

    let mut assignment = vec![0u32; n_slices];
    let mut count: usize = 0; // sealed partitions so far
    let mut sum: u64 = 0; // running nnz of the open partition (line 5)

    let mut i = 0usize;
    while i < n_slices {
        if count == p - 1 {
            // Lines 16-17: only the last partition remains — take the rest.
            for a in assignment.iter_mut().take(n_slices).skip(i) {
                *a = count as u32;
            }
            break;
        }
        sum += slice_nnz[i];
        if (sum as f64) < target {
            // Line 9: slice joins the open partition.
            assignment[i] = count as u32;
            i += 1;
            continue;
        }
        // Lines 10-12: overshoot — compare balance with vs without slice i.
        let with_i = sum as f64 - target; // ≥ 0
        let without_i = target - (sum - slice_nnz[i]) as f64; // ≥ 0
        if without_i <= with_i && sum != slice_nnz[i] {
            // Better without slice i (and the partition is non-empty):
            // seal it, slice i opens the next partition.
            count += 1;
            assignment[i] = count as u32;
            sum = slice_nnz[i];
            i += 1;
        } else {
            // Better with slice i: include it and seal.
            assignment[i] = count as u32;
            count += 1;
            sum = 0;
            i += 1;
        }
    }
    ModePartition::from_assignment(p, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_slices_split_evenly() {
        let hist = vec![5u64; 8];
        let mp = gtp(&hist, 4);
        assert_eq!(mp.loads(&hist), vec![10, 10, 10, 10]);
        assert!(mp.is_contiguous());
    }

    #[test]
    fn single_partition_takes_everything() {
        let hist = [3u64, 1, 4, 1, 5];
        let mp = gtp(&hist, 1);
        assert_eq!(mp.loads(&hist), vec![14]);
    }

    #[test]
    fn zero_parts_treated_as_one() {
        let hist = [1u64, 2];
        let mp = gtp(&hist, 0);
        assert_eq!(mp.num_parts(), 1);
    }

    #[test]
    fn more_parts_than_slices_caps_at_slices() {
        let hist = [7u64, 7];
        let mp = gtp(&hist, 5);
        assert_eq!(mp.num_parts(), 2);
        assert_eq!(mp.loads(&hist), vec![7, 7]);
    }

    #[test]
    fn empty_histogram() {
        let mp = gtp(&[], 3);
        assert_eq!(mp.num_slices(), 0);
    }

    #[test]
    fn boundary_backoff_excludes_heavy_slice() {
        // target = 12/2 = 6. Scanning: 1+2=3 < 6; +10 = 13 ≥ 6.
        // without slice 2: |3-6| = 3; with: |13-6| = 7 → exclude, so
        // partition 0 = {0,1}, partition 1 = {2}... wait hist has 3 slices
        // but then count==p-1 applies. Use 4 slices to exercise both paths.
        let hist = [1u64, 2, 10, 3];
        let mp = gtp(&hist, 2);
        // Partition 0 should be {0,1} (backoff), the rest go to partition 1.
        assert_eq!(mp.assignment(), &[0, 0, 1, 1]);
        assert_eq!(mp.loads(&hist), vec![3, 13]);
    }

    #[test]
    fn boundary_includes_slice_when_better() {
        // target = 12/2 = 6. 5+2=7 ≥ 6: with = 1, without = |5-6| = 1 →
        // tie, "≤" favours excluding... check: without_i(1) <= with_i(1), so
        // slice 1 starts partition 1.
        let hist = [5u64, 2, 5];
        let mp = gtp(&hist, 2);
        assert_eq!(mp.assignment(), &[0, 1, 1]);

        // Now make inclusion strictly better: target 14/2 = 7; 5+3=8:
        // with = 1, without = 2 → include slice 1 in partition 0.
        let hist2 = [5u64, 3, 6];
        let mp2 = gtp(&hist2, 2);
        assert_eq!(mp2.assignment(), &[0, 0, 1]);
        assert_eq!(mp2.loads(&hist2), vec![8, 6]);
    }

    #[test]
    fn giant_first_slice_does_not_leave_empty_partition() {
        // First slice alone overshoots; "without" would create an empty
        // partition, which the `sum != slice_nnz[i]` guard prevents.
        let hist = [100u64, 1, 1, 1];
        let mp = gtp(&hist, 2);
        assert_eq!(mp.assignment()[0], 0);
        // Every slice is assigned to one of the two partitions.
        assert!(mp.assignment().iter().all(|&p| p < 2));
        let loads = mp.loads(&hist);
        assert_eq!(loads.iter().sum::<u64>(), 103);
        assert!(loads.iter().all(|&l| l > 0));
    }

    #[test]
    fn skewed_distribution_imbalance_exceeds_mtp() {
        // The Table IV phenomenon: on a skewed histogram GTP's std-dev is
        // noticeably worse than MTP's.
        let hist: Vec<u64> = (1..=50).map(|i| 1000 / i as u64).collect();
        let g = gtp(&hist, 4).balance(&hist);
        let m = crate::mtp(&hist, 4).balance(&hist);
        assert!(
            m.std_dev < g.std_dev,
            "expected MTP ({}) < GTP ({}) on skewed data",
            m.std_dev,
            g.std_dev
        );
    }

    #[test]
    fn all_zero_slices() {
        let hist = [0u64; 6];
        let mp = gtp(&hist, 3);
        assert_eq!(mp.num_slices(), 6);
        assert_eq!(mp.loads(&hist), vec![0, 0, 0]);
        // The even-split special case: contiguous, two slices per partition,
        // not the degenerate [{0}, {1}, {2,3,4,5}] the greedy loop produced.
        assert!(mp.is_contiguous());
        assert_eq!(mp.assignment(), &[0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn all_zero_slices_uneven_division() {
        // 7 slices over 3 partitions: every partition stays non-empty and
        // sizes differ by at most one.
        let hist = [0u64; 7];
        let mp = gtp(&hist, 3);
        assert!(mp.is_contiguous());
        let mut sizes = [0usize; 3];
        for &a in mp.assignment() {
            sizes[a as usize] += 1;
        }
        assert!(sizes.iter().all(|&s| s > 0));
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn two_slices_two_parts() {
        let hist = [9u64, 1];
        let mp = gtp(&hist, 2);
        assert_eq!(mp.assignment(), &[0, 1]);
    }
}

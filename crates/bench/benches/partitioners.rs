//! Micro-benchmarks of the partitioning heuristics: GTP's `O(I)` scan vs
//! MTP's `O(I log I)` sort-and-fit (the complexity split in Theorem 2),
//! plus the full grid assembly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dismastd_data::{zipf_tensor, ZipfSampler};
use dismastd_partition::{gtp, mtp, GridPartition, Partitioner};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn zipf_hist(n: usize, total: usize, seed: u64) -> Vec<u64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let z = ZipfSampler::new(n, 1.0);
    let mut hist = vec![0u64; n];
    for _ in 0..total {
        hist[z.sample(&mut rng)] += 1;
    }
    hist
}

fn bench_heuristics(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition/heuristics");
    for &slices in &[1_000usize, 10_000, 100_000] {
        let hist = zipf_hist(slices, slices * 10, 7);
        group.bench_with_input(BenchmarkId::new("GTP", slices), &hist, |b, h| {
            b.iter(|| gtp(h, 16))
        });
        group.bench_with_input(BenchmarkId::new("MTP", slices), &hist, |b, h| {
            b.iter(|| mtp(h, 16))
        });
    }
    group.finish();
}

fn bench_partition_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition/parts_sweep");
    let hist = zipf_hist(50_000, 500_000, 8);
    for &p in &[8usize, 38, 256] {
        group.bench_with_input(BenchmarkId::new("MTP", p), &p, |b, &p| {
            b.iter(|| mtp(&hist, p))
        });
    }
    group.finish();
}

fn bench_grid_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition/grid_build");
    group.sample_size(20);
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let t = zipf_tensor(&[2000, 1000, 400], 100_000, &[0.9, 0.9, 0.3], &mut rng).expect("feasible");
    for &workers in &[4usize, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| GridPartition::build(&t, Partitioner::Mtp, &[w; 3], w).expect("builds"))
        });
    }
    group.finish();
}

fn bench_slice_histogram(c: &mut Criterion) {
    // The O(nnz) statistics pass of the data-partitioning phase.
    let mut rng = ChaCha8Rng::seed_from_u64(10);
    let t = zipf_tensor(&[5000, 2000, 500], 200_000, &[0.9, 0.9, 0.3], &mut rng).expect("feasible");
    c.bench_function("partition/slice_nnz", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for mode in 0..3 {
                acc += t.slice_nnz(mode).expect("valid")[0];
            }
            acc
        })
    });
    let _ = rng.gen::<u8>();
}

criterion_group!(
    benches,
    bench_heuristics,
    bench_partition_count,
    bench_grid_build,
    bench_slice_histogram
);
criterion_main!(benches);

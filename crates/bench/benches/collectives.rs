//! Benchmarks of the simulated cluster's collectives — the `O(M N R²)`
//! all-reduce and the all-to-all row exchanges of Theorem 4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dismastd_cluster::{BufferPool, Cluster, Payload};

fn bench_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster/allreduce");
    group.sample_size(20);
    for &workers in &[2usize, 4, 8] {
        // 3 R x R gram matrices at R = 10, the per-mode payload.
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| {
                Cluster::run(w, |ctx| {
                    let mut buf = vec![ctx.rank() as f64; 300];
                    for _ in 0..10 {
                        ctx.allreduce_sum(&mut buf);
                    }
                    buf[0]
                })
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster/exchange");
    group.sample_size(20);
    for &rows in &[100usize, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, &rows| {
            b.iter(|| {
                Cluster::run(4, |ctx| {
                    let outgoing: Vec<Payload> =
                        (0..4).map(|_| Payload::F64(vec![1.0; rows * 10])).collect();
                    let incoming = ctx.exchange(outgoing);
                    incoming.len()
                })
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_spawn_overhead(c: &mut Criterion) {
    // The fixed cost of standing up the SPMD world — the simulator's
    // analogue of task startup.
    let mut group = c.benchmark_group("cluster/spawn");
    group.sample_size(20);
    for &workers in &[1usize, 4, 15] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| Cluster::run(w, |ctx| ctx.rank()).unwrap())
        });
    }
    group.finish();
}

/// Row exchange with pooled vs freshly allocated payload buffers — the
/// allocation pattern of the distributed hot loop's two exchanges per
/// mode per iteration.
fn bench_pooled_payloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster/pooled-exchange");
    group.sample_size(20);
    let rows = 500usize;
    let rank = 10usize;
    for &pooled in &[false, true] {
        let label = if pooled { "pooled" } else { "fresh" };
        group.bench_with_input(BenchmarkId::new(label, rows), &pooled, |b, &pooled| {
            b.iter(|| {
                Cluster::run(4, move |ctx| {
                    let mut pool = BufferPool::new(pooled);
                    let mut total = 0usize;
                    // 20 rounds ≈ the exchanges of a few ALS iterations;
                    // pooling only pays off once buffers start recycling.
                    for _ in 0..20 {
                        let outgoing: Vec<Payload> = (0..4)
                            .map(|d| {
                                if d == ctx.rank() {
                                    Payload::Empty
                                } else {
                                    let mut buf = pool.take();
                                    buf.resize(rows * rank, 1.0);
                                    Payload::F64(buf)
                                }
                            })
                            .collect();
                        let incoming = ctx.exchange(outgoing);
                        for (d, payload) in incoming.into_iter().enumerate() {
                            if d == ctx.rank() {
                                continue;
                            }
                            let data = payload.into_f64();
                            total += data.len();
                            pool.put(data);
                        }
                    }
                    total
                })
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_allreduce,
    bench_exchange,
    bench_spawn_overhead,
    bench_pooled_payloads
);
criterion_main!(benches);

//! Benchmarks of the simulated cluster's collectives — the `O(M N R²)`
//! all-reduce and the all-to-all row exchanges of Theorem 4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dismastd_cluster::{Cluster, Payload};

fn bench_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster/allreduce");
    group.sample_size(20);
    for &workers in &[2usize, 4, 8] {
        // 3 R x R gram matrices at R = 10, the per-mode payload.
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &w| {
                b.iter(|| {
                    Cluster::run(w, |ctx| {
                        let mut buf = vec![ctx.rank() as f64; 300];
                        for _ in 0..10 {
                            ctx.allreduce_sum(&mut buf);
                        }
                        buf[0]
                    })
                })
            },
        );
    }
    group.finish();
}

fn bench_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster/exchange");
    group.sample_size(20);
    for &rows in &[100usize, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, &rows| {
            b.iter(|| {
                Cluster::run(4, |ctx| {
                    let outgoing: Vec<Payload> = (0..4)
                        .map(|_| Payload::F64(vec![1.0; rows * 10]))
                        .collect();
                    let incoming = ctx.exchange(outgoing);
                    incoming.len()
                })
            })
        });
    }
    group.finish();
}

fn bench_spawn_overhead(c: &mut Criterion) {
    // The fixed cost of standing up the SPMD world — the simulator's
    // analogue of task startup.
    let mut group = c.benchmark_group("cluster/spawn");
    group.sample_size(20);
    for &workers in &[1usize, 4, 15] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &w| b.iter(|| Cluster::run(w, |ctx| ctx.rank())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_allreduce, bench_exchange, bench_spawn_overhead);
criterion_main!(benches);

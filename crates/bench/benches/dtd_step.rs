//! Benchmarks of whole decomposition iterations: static CP-ALS vs the
//! streaming DTD update, serial vs distributed — the end-to-end numbers
//! behind Fig. 5's headline contrast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dismastd_core::distributed::{dismastd, dms_mg};
use dismastd_core::{ClusterConfig, DecompConfig};
use dismastd_data::{uniform_tensor, StreamSequence};
use dismastd_tensor::{Matrix, SparseTensor};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

struct Workload {
    full: SparseTensor,
    complement: SparseTensor,
    old_factors: Vec<Matrix>,
}

fn workload() -> Workload {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let full = uniform_tensor(&[400, 350, 300], 120_000, &mut rng).expect("feasible");
    let stream = StreamSequence::cut(&full, &[0.9, 1.0]).expect("schedule");
    let cfg = DecompConfig::default().with_max_iters(3);
    let prev = dismastd_core::als::cp_als(stream.snapshot(0), &cfg).expect("als");
    let complement = stream
        .snapshot(1)
        .complement(stream.snapshot(0).shape())
        .expect("nested");
    Workload {
        full,
        complement,
        old_factors: prev.kruskal.into_factors(),
    }
}

fn bench_serial_iteration(c: &mut Criterion) {
    let w = workload();
    let cfg = DecompConfig::default().with_max_iters(1);
    let mut group = c.benchmark_group("dtd/serial_iteration");
    group.sample_size(20);
    group.bench_function("dtd_complement", |b| {
        b.iter(|| dismastd_core::dtd(&w.complement, &w.old_factors, &cfg).expect("runs"))
    });
    group.bench_function("als_full", |b| {
        b.iter(|| dismastd_core::als::cp_als(&w.full, &cfg).expect("runs"))
    });
    group.finish();
}

fn bench_distributed_iteration(c: &mut Criterion) {
    let w = workload();
    let cfg = DecompConfig::default().with_max_iters(1);
    let mut group = c.benchmark_group("dtd/distributed_iteration");
    group.sample_size(10);
    for workers in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("dismastd", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    dismastd(
                        &w.complement,
                        &w.old_factors,
                        &cfg,
                        &ClusterConfig::new(workers),
                    )
                    .expect("runs")
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("dms_mg", workers),
            &workers,
            |b, &workers| {
                b.iter(|| dms_mg(&w.full, &cfg, &ClusterConfig::new(workers)).expect("runs"))
            },
        );
    }
    group.finish();
}

fn bench_loss_reuse(c: &mut Criterion) {
    // The Sec. IV-B4 claim: loss via reused intermediates is O(R²-ish),
    // vs the naive O(nnz·N·R) inner-product pass it replaces.
    let w = workload();
    let factors: Vec<Matrix> = {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        w.complement
            .shape()
            .iter()
            .map(|&s| Matrix::random(s, 10, &mut rng))
            .collect()
    };
    let kruskal = dismastd_tensor::KruskalTensor::new(factors.clone()).expect("valid");
    let hat = dismastd_tensor::mttkrp::mttkrp(&w.complement, &factors, 2).expect("runs");
    let mut group = c.benchmark_group("dtd/loss");
    group.bench_function("reused_inner", |b| {
        b.iter(|| dismastd_tensor::mttkrp::inner_from_mttkrp(&hat, &factors[2]).expect("ok"))
    });
    group.bench_function("fresh_inner_pass", |b| {
        b.iter(|| kruskal.inner_sparse(&w.complement).expect("ok"))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_serial_iteration,
    bench_distributed_iteration,
    bench_loss_reuse
);
criterion_main!(benches);

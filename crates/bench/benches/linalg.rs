//! Micro-benchmarks of the dense `R x R` machinery behind every factor
//! update: Gram products (`O(I R²)`), the Hadamard-product denominators,
//! factorisation (`O(R³)`), and the row-wise solve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dismastd_tensor::linalg::{solve_right, Factorized};
use dismastd_tensor::ops::{grand_sum_hadamard, hadamard_skip};
use dismastd_tensor::Matrix;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_gram(c: &mut Criterion) {
    let mut group = c.benchmark_group("linalg/gram");
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    for &rows in &[1_000usize, 10_000, 100_000] {
        let a = Matrix::random(rows, 10, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| a.gram())
        });
    }
    group.finish();
}

fn bench_solve_right(c: &mut Criterion) {
    let mut group = c.benchmark_group("linalg/solve_right");
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    for &rank in &[10usize, 20, 40] {
        // SPD system: gram of a random tall matrix plus a ridge.
        let basis = Matrix::random(rank * 4, rank, &mut rng);
        let mut m = basis.gram();
        for i in 0..rank {
            m.set(i, i, m.get(i, i) + 1.0);
        }
        let b = Matrix::random(5_000, rank, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(rank), &rank, |bch, _| {
            bch.iter(|| solve_right(&b, &m).expect("SPD"))
        });
    }
    group.finish();
}

fn bench_factorize(c: &mut Criterion) {
    let mut group = c.benchmark_group("linalg/factorize");
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    for &rank in &[10usize, 40] {
        let basis = Matrix::random(rank * 4, rank, &mut rng);
        let mut m = basis.gram();
        for i in 0..rank {
            m.set(i, i, m.get(i, i) + 1.0);
        }
        group.bench_with_input(BenchmarkId::from_parameter(rank), &rank, |b, _| {
            b.iter(|| Factorized::new(&m).expect("SPD"))
        });
    }
    group.finish();
}

fn bench_hadamard_chain(c: &mut Criterion) {
    // The (A_k)^{⊛ k≠n} denominators and the grand-sum loss kernel.
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let grams: Vec<Matrix> = (0..5).map(|_| Matrix::random(10, 10, &mut rng)).collect();
    c.bench_function("linalg/hadamard_skip", |b| {
        b.iter(|| hadamard_skip(&grams, 2).expect("valid"))
    });
    let refs: Vec<&Matrix> = grams.iter().collect();
    c.bench_function("linalg/grand_sum_hadamard", |b| {
        b.iter(|| grand_sum_hadamard(&refs).expect("valid"))
    });
}

criterion_group!(
    benches,
    bench_gram,
    bench_solve_right,
    bench_factorize,
    bench_hadamard_chain
);
criterion_main!(benches);

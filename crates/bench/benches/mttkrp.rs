//! Micro-benchmark of the MTTKRP kernel — the operator the paper identifies
//! as "the bottleneck cost of tensor decomposition" (Sec. I).
//!
//! Sweeps nonzero count and rank to confirm the `O(nnz · N · R)` cost of
//! Theorem 2's dominant term.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dismastd_data::uniform_tensor;
use dismastd_tensor::mttkrp::mttkrp;
use dismastd_tensor::Matrix;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_mttkrp_nnz(c: &mut Criterion) {
    let mut group = c.benchmark_group("mttkrp/nnz");
    let shape = [400usize, 300, 200];
    for &nnz in &[10_000usize, 40_000, 160_000] {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let t = uniform_tensor(&shape, nnz, &mut rng).expect("feasible");
        let factors: Vec<Matrix> = shape
            .iter()
            .map(|&s| Matrix::random(s, 10, &mut rng))
            .collect();
        group.throughput(Throughput::Elements(nnz as u64));
        group.bench_with_input(BenchmarkId::from_parameter(nnz), &nnz, |b, _| {
            b.iter(|| mttkrp(&t, &factors, 0).expect("runs"))
        });
    }
    group.finish();
}

fn bench_mttkrp_rank(c: &mut Criterion) {
    let mut group = c.benchmark_group("mttkrp/rank");
    let shape = [300usize, 300, 100];
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let t = uniform_tensor(&shape, 50_000, &mut rng).expect("feasible");
    for &rank in &[5usize, 10, 20, 40] {
        let factors: Vec<Matrix> = shape
            .iter()
            .map(|&s| Matrix::random(s, rank, &mut rng))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(rank), &rank, |b, _| {
            b.iter(|| mttkrp(&t, &factors, 1).expect("runs"))
        });
    }
    group.finish();
}

fn bench_mttkrp_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("mttkrp/order");
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    for order in [3usize, 4, 5] {
        let shape: Vec<usize> = (0..order).map(|_| 60).collect();
        let t = uniform_tensor(&shape, 30_000, &mut rng).expect("feasible");
        let factors: Vec<Matrix> = shape
            .iter()
            .map(|&s| Matrix::random(s, 10, &mut rng))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(order), &order, |b, _| {
            b.iter(|| mttkrp(&t, &factors, 0).expect("runs"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mttkrp_nnz, bench_mttkrp_rank, bench_mttkrp_order);
criterion_main!(benches);

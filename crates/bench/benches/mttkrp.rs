//! Micro-benchmark of the MTTKRP kernel — the operator the paper identifies
//! as "the bottleneck cost of tensor decomposition" (Sec. I).
//!
//! Sweeps nonzero count and rank to confirm the `O(nnz · N · R)` cost of
//! Theorem 2's dominant term, and pits the naive COO kernel against the
//! cached mode-ordered layout (`MttkrpPlan`) on a skewed Zipf tensor — the
//! access pattern the layout exists for.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dismastd_data::{uniform_tensor, zipf_tensor};
use dismastd_tensor::mttkrp::{mttkrp, mttkrp_into};
use dismastd_tensor::{Matrix, MttkrpPlan, ThreadPool};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_mttkrp_nnz(c: &mut Criterion) {
    let mut group = c.benchmark_group("mttkrp/nnz");
    let shape = [400usize, 300, 200];
    for &nnz in &[10_000usize, 40_000, 160_000] {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let t = uniform_tensor(&shape, nnz, &mut rng).expect("feasible");
        let factors: Vec<Matrix> = shape
            .iter()
            .map(|&s| Matrix::random(s, 10, &mut rng))
            .collect();
        group.throughput(Throughput::Elements(nnz as u64));
        group.bench_with_input(BenchmarkId::from_parameter(nnz), &nnz, |b, _| {
            b.iter(|| mttkrp(&t, &factors, 0).expect("runs"))
        });
    }
    group.finish();
}

fn bench_mttkrp_rank(c: &mut Criterion) {
    let mut group = c.benchmark_group("mttkrp/rank");
    let shape = [300usize, 300, 100];
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let t = uniform_tensor(&shape, 50_000, &mut rng).expect("feasible");
    for &rank in &[5usize, 10, 20, 40] {
        let factors: Vec<Matrix> = shape
            .iter()
            .map(|&s| Matrix::random(s, rank, &mut rng))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(rank), &rank, |b, _| {
            b.iter(|| mttkrp(&t, &factors, 1).expect("runs"))
        });
    }
    group.finish();
}

fn bench_mttkrp_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("mttkrp/order");
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    for order in [3usize, 4, 5] {
        let shape: Vec<usize> = (0..order).map(|_| 60).collect();
        let t = uniform_tensor(&shape, 30_000, &mut rng).expect("feasible");
        let factors: Vec<Matrix> = shape
            .iter()
            .map(|&s| Matrix::random(s, 10, &mut rng))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(order), &order, |b, _| {
            b.iter(|| mttkrp(&t, &factors, 0).expect("runs"))
        });
    }
    group.finish();
}

/// Naive COO kernel vs the cached mode-ordered layout at matched nnz and
/// rank, on the Zipf dataset (skewed slices make the naive kernel's output
/// writes collide on hot rows — the layout's best and most realistic
/// case).  Mode 1 is benchmarked: mode 0 shares the naive kernel's
/// iteration order, so any higher mode shows the layout effect.
fn bench_naive_vs_layout(c: &mut Criterion) {
    let mut group = c.benchmark_group("mttkrp/layout");
    let shape = [400usize, 300, 200];
    let nnz = 80_000;
    let rank = 10;
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let t = zipf_tensor(&shape, nnz, &[1.1, 1.1, 1.1], &mut rng).expect("feasible");
    let factors: Vec<Matrix> = shape
        .iter()
        .map(|&s| Matrix::random(s, rank, &mut rng))
        .collect();
    let plan = MttkrpPlan::build(&t).expect("fits u32 layout");
    let mut out = Matrix::zeros(shape[1], rank);
    group.throughput(Throughput::Elements(t.nnz() as u64));
    group.bench_function(BenchmarkId::new("naive", t.nnz()), |b| {
        b.iter(|| {
            out.fill_zero();
            mttkrp_into(&t, &factors, 1, &mut out).expect("runs");
            out.get(0, 0)
        })
    });
    group.bench_function(BenchmarkId::new("layout", t.nnz()), |b| {
        b.iter(|| {
            out.fill_zero();
            plan.mttkrp_into(&factors, 1, &mut out).expect("runs");
            out.get(0, 0)
        })
    });
    // Amortisation context: what one layout build costs relative to the
    // kernels it accelerates (paid once per cell per snapshot).
    group.bench_function(BenchmarkId::new("build", t.nnz()), |b| {
        b.iter(|| MttkrpPlan::build(&t).expect("fits u32 layout").nnz())
    });
    group.finish();
}

/// Thread-scaling axis: the pooled layout kernel and the pooled build on
/// the same 80k-nnz Zipf case, at 1/2/4 pool lanes.  Results depend on
/// the machine's core count — rows recorded in `bench_results` carry the
/// thread count and the cores available so numbers from different boxes
/// stay comparable (a 1-core container shows no scaling by construction).
fn bench_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("mttkrp/threads");
    let shape = [400usize, 300, 200];
    let nnz = 80_000;
    let rank = 10;
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let t = zipf_tensor(&shape, nnz, &[1.1, 1.1, 1.1], &mut rng).expect("feasible");
    let factors: Vec<Matrix> = shape
        .iter()
        .map(|&s| Matrix::random(s, rank, &mut rng))
        .collect();
    let plan = MttkrpPlan::build(&t).expect("fits u32 layout");
    let mut out = Matrix::zeros(shape[1], rank);
    group.throughput(Throughput::Elements(t.nnz() as u64));
    for &threads in &[1usize, 2, 4] {
        let pool = ThreadPool::new(threads);
        group.bench_function(BenchmarkId::new("kernel", threads), |b| {
            b.iter(|| {
                out.fill_zero();
                plan.mttkrp_into_pooled(&factors, 1, &mut out, &pool)
                    .expect("runs");
                out.get(0, 0)
            })
        });
        group.bench_function(BenchmarkId::new("build", threads), |b| {
            b.iter(|| MttkrpPlan::build_with(&t, &pool).expect("fits").nnz())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_mttkrp_nnz,
    bench_mttkrp_rank,
    bench_mttkrp_order,
    bench_naive_vs_layout,
    bench_threads
);
criterion_main!(benches);

//! **Fig. 7** — running time per iteration versus the number of worker
//! nodes (3, 6, 9, 12, 15) for DisMASTD-GTP and DisMASTD-MTP.
//!
//! ```text
//! cargo run -p dismastd-bench --release --bin fig7
//! ```
//!
//! Expected shape (paper Sec. V-B3): time drops as nodes are added, but the
//! speedup on the small skewed datasets saturates early — task startup
//! costs dominate once per-node compute is tiny — while the large uniform
//! Synthetic dataset keeps scaling.

use dismastd_bench::{
    measure_serial_iter, modeled_iter_time, placement_profile, print_table, profile_from_run,
    save_records, secs, ExperimentContext, ResultRecord,
};
use dismastd_core::distributed::dismastd;
use dismastd_core::{ClusterConfig, DecompConfig};
use dismastd_data::{DatasetSpec, StreamSequence};
use dismastd_partition::Partitioner;
use std::collections::BTreeMap;

const NODES: [usize; 5] = [3, 6, 9, 12, 15];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = ExperimentContext::from_env();
    let cfg = DecompConfig::default().with_max_iters(5);
    let mut records: Vec<ResultRecord> = Vec::new();

    println!(
        "== Fig. 7: time/iteration vs number of nodes (scale {:.2}) ==\n",
        ctx.scale
    );
    for spec in DatasetSpec::all(ctx.scale) {
        let full = spec.generate()?;
        let stream = StreamSequence::cut(&full, &[0.95, 1.0])?;
        let prev = dismastd_core::als::cp_als(stream.snapshot(0), &cfg)?;
        let complement = stream.snapshot(1).complement(stream.snapshot(0).shape())?;
        let (serial_iter, _) = measure_serial_iter(&complement, prev.kruskal.factors(), &cfg)?;

        println!("-- {} (complement nnz {}) --", spec.name, complement.nnz());
        let mut rows: Vec<Vec<String>> = Vec::new();
        for partitioner in [Partitioner::Gtp, Partitioner::Mtp] {
            for &nodes in &NODES {
                // Partitions per mode = nodes (the Fig. 6 guidance).
                let cluster = ClusterConfig::new(nodes)
                    .with_partitioner(partitioner)
                    .with_parts_per_mode(vec![nodes; full.order()]);
                let dist = dismastd(&complement, prev.kruskal.factors(), &cfg, &cluster)?;
                let (max_load, _) = placement_profile(&complement, partitioner, nodes, nodes)?;
                let profile = profile_from_run(&complement, &dist, max_load, nodes, nodes);
                let modeled = modeled_iter_time(serial_iter, &profile, &ctx.cost);
                let method = format!("DisMASTD-{}", partitioner.name());
                rows.push(vec![
                    method.clone(),
                    nodes.to_string(),
                    secs(modeled),
                    format!("{:.1}", profile.bytes_per_iter as f64 / 1024.0),
                ]);
                records.push(ResultRecord {
                    experiment: "fig7".into(),
                    dataset: spec.name.clone(),
                    method,
                    x: nodes as f64,
                    value: modeled.as_secs_f64(),
                    extra: BTreeMap::from([
                        ("bytes_per_iter".into(), profile.bytes_per_iter as f64),
                        ("serial_iter_s".into(), serial_iter.as_secs_f64()),
                    ]),
                });
            }
        }
        print_table(&["method", "nodes", "modeled s/iter", "KB/iter"], &rows);

        // Speedup 3 → 15 nodes, the paper's scalability observation.
        for m in ["DisMASTD-GTP", "DisMASTD-MTP"] {
            let v = |n: f64| {
                records
                    .iter()
                    .find(|r| r.dataset == spec.name && r.method == m && r.x == n)
                    .map_or(f64::NAN, |r| r.value)
            };
            println!("=> {m}: speedup 3→15 nodes = {:.2}x", v(3.0) / v(15.0));
        }
        println!();
    }
    save_records("fig7", &records)?;
    Ok(())
}

//! **Collectives smoke** — quick health check of the collective layer:
//! allreduce algorithm micro-timings, exchange compression ratios, and the
//! dist-4 exchange fraction against the pre-rework baseline.
//!
//! ```text
//! cargo run -p dismastd-bench --release --bin collectives_smoke
//! ```
//!
//! Three parts, all sized to run in seconds (the bin is wired into
//! `scripts/check.sh`):
//!
//! 1. **Allreduce micro-bench** — times flat, ring, and halving/doubling
//!    reductions of one Gram-sized buffer on a 4-worker cluster.
//! 2. **Policy comparison** — one incremental streaming step at dist-4
//!    under the flat policy, the default (compressed, auto-allreduce,
//!    overlapped) policy, and the default plus the f32 downcast, recording
//!    bytes, wire bytes, compression ratios, and exchange fractions.
//! 3. **Baseline check** — the measured exchange fractions land in
//!    `bench_results/collectives.json` next to the seed baseline
//!    (0.39890494 at dist-4) so regressions are visible in review.

use dismastd_bench::{print_table, ExperimentContext};
use dismastd_cluster::{AllreduceAlgo, Cluster, ClusterOptions, CommPolicy};
use dismastd_core::{ClusterConfig, DecompConfig, ExecutionMode, StepReport, StreamingSession};
use dismastd_data::{DatasetSpec, StreamSequence};
use serde::Serialize;
use std::time::Instant;

/// Dist-4 `frac_exchange` of the seed revision's `phases.jsonl`, before the
/// compressed/overlapped collective layer existed.
const SEED_DIST4_EXCHANGE_FRACTION: f64 = 0.398_904_94;

/// Workers in the comparison runs (matches the baseline row).
const WORLD: usize = 4;

#[derive(Serialize)]
struct AllreduceBench {
    algo: String,
    world: usize,
    /// Per-rank kernel pool width the default policy would resolve to for
    /// this world — stamped so every row in the report names its thread
    /// context even though the allreduce itself runs on the rank threads.
    threads: usize,
    buffer_len: usize,
    reps: usize,
    /// Slowest rank's mean seconds per allreduce.
    secs_per_op: f64,
}

#[derive(Serialize)]
struct PolicyRun {
    policy: String,
    iterations: f64,
    /// Per-rank kernel pool width the config resolved to for this world.
    threads: usize,
    /// Cores the host exposes — context for the thread column on shared or
    /// single-core boxes.
    cores: usize,
    /// Grid cells the adaptive selector kept on the naive COO kernel.
    cells_coo: u64,
    /// Grid cells the selector promoted to the sorted-run plan.
    cells_plan: u64,
    logical_bytes: u64,
    wire_bytes: u64,
    compressed_bytes: u64,
    downcast_rows: u64,
    compression_ratio: f64,
    exchange_fraction: f64,
}

#[derive(Serialize)]
struct ExchangeFraction {
    workers: usize,
    baseline_seed: f64,
    flat: f64,
    optimized: f64,
}

#[derive(Serialize)]
struct CollectivesReport {
    benchmarks: Vec<AllreduceBench>,
    compression: Vec<PolicyRun>,
    exchange_fraction: ExchangeFraction,
}

/// Times `reps` allreduces of a `len`-element buffer under `algo` and
/// returns the slowest rank's mean seconds per operation.
fn time_allreduce(
    algo: AllreduceAlgo,
    len: usize,
    reps: usize,
) -> Result<f64, Box<dyn std::error::Error>> {
    let (times, _comm) =
        Cluster::try_run_with_opts(WORLD, &ClusterOptions::default(), move |ctx| {
            let mut buf = vec![ctx.rank() as f64 + 1.0; len];
            ctx.try_allreduce_sum_with(&mut buf, algo)?; // warm-up
            let start = Instant::now();
            for _ in 0..reps {
                buf.iter_mut().for_each(|v| *v = 1.0);
                ctx.try_allreduce_sum_with(&mut buf, algo)?;
            }
            Ok(start.elapsed())
        })
        .map_err(|e| format!("allreduce micro-bench failed: {e}"))?;
    let slowest = times.into_iter().max().unwrap_or_default();
    Ok(slowest.as_secs_f64() / reps as f64)
}

/// Runs one two-snapshot stream at dist-4 under `policy` and extracts the
/// traffic counters and the exchange fraction of total phase time.
fn run_policy(
    spec: &DatasetSpec,
    cfg: &DecompConfig,
    name: &str,
    policy: CommPolicy,
) -> Result<PolicyRun, Box<dyn std::error::Error>> {
    let full = spec.generate()?;
    let stream = StreamSequence::cut(&full, &[0.9, 1.0])?;
    let mode = ExecutionMode::Distributed(ClusterConfig::new(WORLD).with_comm(policy));
    let mut session = StreamingSession::new(*cfg, mode);
    session.set_collect_metrics(true);
    session.ingest(stream.snapshot(0))?;
    let report: StepReport = session.ingest(stream.snapshot(1))?;

    let metrics = report
        .metrics
        .as_ref()
        .ok_or("metrics were not collected")?;
    let phase_ns = metrics.phase_total_ns() as f64;
    let exchange_ns = metrics.span_total_ns("phase/exchange") as f64;
    let comm = report
        .comm
        .as_ref()
        .ok_or("distributed step carries comm")?;
    Ok(PolicyRun {
        policy: name.to_string(),
        iterations: report.iterations as f64,
        threads: cfg.threads.resolve_for_world(WORLD),
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        cells_coo: metrics.counter_value("plan/adaptive_coo"),
        cells_plan: metrics.counter_value("plan/adaptive_plan"),
        logical_bytes: comm.bytes,
        wire_bytes: comm.wire_bytes(),
        compressed_bytes: comm.compressed_bytes,
        downcast_rows: comm.downcast_rows,
        compression_ratio: comm.compression_ratio(),
        exchange_fraction: if phase_ns > 0.0 {
            exchange_ns / phase_ns
        } else {
            0.0
        },
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = ExperimentContext::from_env();

    // -- 1. allreduce micro-bench ----------------------------------------
    let (len, reps) = (32 * 1024, 8);
    let mut benchmarks = Vec::new();
    println!("== Allreduce micro-bench ({WORLD} workers, {len} f64) ==\n");
    let mut rows = Vec::new();
    for (name, algo) in [
        ("flat", AllreduceAlgo::Flat),
        ("ring", AllreduceAlgo::Ring),
        ("halving", AllreduceAlgo::Halving),
    ] {
        let secs = time_allreduce(algo, len, reps)?;
        rows.push(vec![name.to_string(), format!("{:.1}", secs * 1e6)]);
        benchmarks.push(AllreduceBench {
            algo: name.to_string(),
            world: WORLD,
            threads: dismastd_core::ThreadPolicy::default().resolve_for_world(WORLD),
            buffer_len: len,
            reps,
            secs_per_op: secs,
        });
    }
    print_table(&["algo", "µs/op"], &rows);

    // -- 2. policy comparison at dist-4 ----------------------------------
    let cfg = DecompConfig::default().with_max_iters(5);
    let spec = DatasetSpec::synthetic(ctx.scale);
    println!(
        "\n== Comm-policy comparison (dist-{WORLD}, {}) ==\n",
        spec.name
    );
    let runs = vec![
        run_policy(&spec, &cfg, "flat", CommPolicy::flat())?,
        run_policy(&spec, &cfg, "default", CommPolicy::default())?,
        run_policy(
            &spec,
            &cfg,
            "downcast",
            CommPolicy::default().with_downcast_f32(true),
        )?,
    ];
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                r.logical_bytes.to_string(),
                r.wire_bytes.to_string(),
                format!("{:.3}", r.compression_ratio),
                format!("{:.4}", r.exchange_fraction),
            ]
        })
        .collect();
    print_table(
        &["policy", "logical B", "wire B", "ratio", "frac_exchange"],
        &rows,
    );

    // -- 3. persist next to the seed baseline ----------------------------
    let exchange_fraction = ExchangeFraction {
        workers: WORLD,
        baseline_seed: SEED_DIST4_EXCHANGE_FRACTION,
        flat: runs[0].exchange_fraction,
        optimized: runs[1].exchange_fraction,
    };
    println!(
        "\nexchange fraction: seed {:.4} -> flat {:.4} / optimized {:.4}",
        exchange_fraction.baseline_seed, exchange_fraction.flat, exchange_fraction.optimized
    );
    let report = CollectivesReport {
        benchmarks,
        compression: runs,
        exchange_fraction,
    };
    std::fs::create_dir_all("bench_results")?;
    let path = "bench_results/collectives.json";
    std::fs::write(
        path,
        serde_json::to_string(&report).map_err(std::io::Error::other)?,
    )?;
    eprintln!("[saved {path}]");
    Ok(())
}

//! **Table IV** — standard-deviation statistics of nnz in tensor partitions
//! for GTP vs MTP, partition counts p ∈ {8, 15, 23, 30, 38}, on all four
//! datasets.
//!
//! ```text
//! cargo run -p dismastd-bench --release --bin table4
//! ```
//!
//! The paper's raw numbers are on tensors of 10⁷-10⁸ nonzeros; this
//! reproduction runs on scaled datasets, so the comparable quantity is the
//! **normalised** standard deviation (std-dev / mean load, i.e. the
//! coefficient of variation), whose magnitudes match the paper's reported
//! values.  Expected shape: MTP ≪ GTP on the three skewed "real-like"
//! datasets; GTP ≈ MTP (both tiny) on the uniform Synthetic.

use dismastd_bench::{print_table, save_records, ExperimentContext, ResultRecord};
use dismastd_data::DatasetSpec;
use dismastd_partition::{gtp, mtp};
use std::collections::BTreeMap;

const PARTS: [usize; 5] = [8, 15, 23, 30, 38];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = ExperimentContext::from_env();
    let mut records: Vec<ResultRecord> = Vec::new();

    println!(
        "== Table IV: normalised std-dev of partition nnz (scale {:.2}) ==\n",
        ctx.scale
    );
    let mut rows: Vec<Vec<String>> = Vec::new();
    for spec in DatasetSpec::all(ctx.scale) {
        let t = spec.generate()?;
        for (name, algo) in [
            (
                "GTP",
                gtp as fn(&[u64], usize) -> dismastd_partition::ModePartition,
            ),
            (
                "MTP",
                mtp as fn(&[u64], usize) -> dismastd_partition::ModePartition,
            ),
        ] {
            let mut row = vec![spec.name.clone(), name.to_string()];
            for &p in &PARTS {
                // Average the normalised std-dev over the three modes (the
                // partitioners run per mode, Algorithms 2-3).
                let mut cv_sum = 0.0;
                for mode in 0..t.order() {
                    let hist = t.slice_nnz(mode)?;
                    let stats = algo(&hist, p).balance(&hist);
                    cv_sum += stats.cv;
                }
                let cv = cv_sum / t.order() as f64;
                row.push(format!("{cv:.4}"));
                records.push(ResultRecord {
                    experiment: "table4".into(),
                    dataset: spec.name.clone(),
                    method: name.into(),
                    x: p as f64,
                    value: cv,
                    extra: BTreeMap::new(),
                });
            }
            rows.push(row);
        }
    }
    print_table(&["dataset", "p", "8", "15", "23", "30", "38"], &rows);

    // Shape check mirrored from the paper's discussion.
    println!();
    for dataset in ["Clothing", "Book", "Netflix"] {
        let ratio: f64 = PARTS
            .iter()
            .map(|&p| {
                let at = |method: &str| {
                    records
                        .iter()
                        .find(|r| r.dataset == dataset && r.method == method && r.x == p as f64)
                        .map_or(f64::NAN, |r| r.value)
                };
                at("GTP") / at("MTP").max(1e-12)
            })
            .sum::<f64>()
            / PARTS.len() as f64;
        println!("=> {dataset}: GTP std-dev is on average {ratio:.1}x MTP's (skewed data)");
    }
    save_records("table4", &records)?;
    Ok(())
}

//! **Fig. 6** — running time per iteration versus the number of tensor
//! partitions per mode (8, 15, 23, 30, 38) for DisMASTD-GTP and
//! DisMASTD-MTP, at the paper's 15 worker nodes.
//!
//! ```text
//! cargo run -p dismastd-bench --release --bin fig6
//! ```
//!
//! Expected shape (paper Sec. V-B2): the curve first drops (or stays flat)
//! and then rises as partition counts exceed the node count — more
//! partitions buy parallelism/balance but each costs task overhead.  The
//! empirical sweet spot is partitions ≈ nodes.  MTP runs slightly faster
//! than GTP throughout.

use dismastd_bench::{
    measure_serial_iter, modeled_iter_time, placement_profile, print_table, profile_from_run,
    save_records, secs, ExperimentContext, ResultRecord,
};
use dismastd_core::distributed::dismastd;
use dismastd_core::{ClusterConfig, DecompConfig};
use dismastd_data::{DatasetSpec, StreamSequence};
use dismastd_partition::Partitioner;
use std::collections::BTreeMap;

const WORKERS: usize = 15;
const PARTS: [usize; 5] = [8, 15, 23, 30, 38];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = ExperimentContext::from_env();
    let cfg = DecompConfig::default().with_max_iters(5);
    let mut records: Vec<ResultRecord> = Vec::new();

    println!(
        "== Fig. 6: time/iteration vs partitions per mode (15 workers, scale {:.2}) ==\n",
        ctx.scale
    );
    for spec in DatasetSpec::all(ctx.scale) {
        let full = spec.generate()?;
        // The 95% → 100% streaming step of Fig. 5 as the workload.
        let stream = StreamSequence::cut(&full, &[0.95, 1.0])?;
        let prev = dismastd_core::als::cp_als(stream.snapshot(0), &cfg)?;
        let complement = stream.snapshot(1).complement(stream.snapshot(0).shape())?;
        let (serial_iter, _) = measure_serial_iter(&complement, prev.kruskal.factors(), &cfg)?;

        println!("-- {} (complement nnz {}) --", spec.name, complement.nnz());
        let mut rows: Vec<Vec<String>> = Vec::new();
        for partitioner in [Partitioner::Gtp, Partitioner::Mtp] {
            for &parts in &PARTS {
                let cluster = ClusterConfig::new(WORKERS)
                    .with_partitioner(partitioner)
                    .with_parts_per_mode(vec![parts; full.order()]);
                let dist = dismastd(&complement, prev.kruskal.factors(), &cfg, &cluster)?;
                let (max_load, _) = placement_profile(&complement, partitioner, parts, WORKERS)?;
                let profile = profile_from_run(&complement, &dist, max_load, WORKERS, parts);
                let modeled = modeled_iter_time(serial_iter, &profile, &ctx.cost);
                let method = format!("DisMASTD-{}", partitioner.name());
                rows.push(vec![
                    method.clone(),
                    parts.to_string(),
                    secs(modeled),
                    secs(dist.time_per_iter()),
                    format!("{:.3}", max_load as f64 / complement.nnz().max(1) as f64),
                ]);
                records.push(ResultRecord {
                    experiment: "fig6".into(),
                    dataset: spec.name.clone(),
                    method,
                    x: parts as f64,
                    value: modeled.as_secs_f64(),
                    extra: BTreeMap::from([
                        ("measured_iter_s".into(), dist.time_per_iter().as_secs_f64()),
                        (
                            "max_load_frac".into(),
                            max_load as f64 / complement.nnz().max(1) as f64,
                        ),
                    ]),
                });
            }
        }
        print_table(
            &[
                "method",
                "parts/mode",
                "modeled s/iter",
                "measured s/iter",
                "max-load frac",
            ],
            &rows,
        );

        // Locate each method's modeled optimum.
        for m in ["DisMASTD-GTP", "DisMASTD-MTP"] {
            let best = records
                .iter()
                .filter(|r| r.dataset == spec.name && r.method == m)
                .min_by(|a, b| a.value.total_cmp(&b.value))
                .ok_or("no rows recorded for method")?;
            println!("=> {m}: fastest at {} partitions/mode", best.x);
        }
        println!();
    }
    save_records("fig6", &records)?;
    Ok(())
}

//! **Fig. 5** — running time per iteration versus the multi-aspect
//! streaming tensor (75% → 100% of each dataset, 5% steps), comparing
//! DisMASTD-GTP / DisMASTD-MTP against the extended static baseline
//! DMS-MG-GTP / DMS-MG-MTP, on all four datasets.
//!
//! ```text
//! cargo run -p dismastd-bench --release --bin fig5
//! DISMASTD_SCALE=0.5 cargo run -p dismastd-bench --release --bin fig5
//! ```
//!
//! Expected shape (paper Sec. V-B1): DisMASTD is much faster than DMS-MG
//! and stays flat as the stream grows (its cost tracks the complement,
//! not the accumulated tensor); DMS-MG grows with the tensor; MTP edges
//! out GTP.
#![allow(clippy::needless_range_loop)]

use dismastd_bench::{
    measure_serial_iter, modeled_iter_time, placement_profile, print_table, profile_from_run,
    save_records, secs, ExperimentContext, ResultRecord,
};
use dismastd_core::distributed::{dismastd, dms_mg};
use dismastd_core::{ClusterConfig, DecompConfig};
use dismastd_data::{DatasetSpec, StreamSequence};
use dismastd_partition::Partitioner;
use dismastd_tensor::Matrix;
use std::collections::BTreeMap;

const WORKERS: usize = 15; // the paper's cluster size
const PARTS: usize = 15; // partitions per mode = nodes (the paper's guide)

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = ExperimentContext::from_env();
    let cfg = DecompConfig::default().with_max_iters(5);
    // 70% primes the previous decomposition; 75%..100% are the plotted steps.
    let fractions = [0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 1.00];
    let mut records: Vec<ResultRecord> = Vec::new();

    println!(
        "== Fig. 5: time/iteration vs stream step (scale {:.2}) ==\n",
        ctx.scale
    );
    for spec in DatasetSpec::all(ctx.scale) {
        let full = spec.generate()?;
        let stream = StreamSequence::cut(&full, &fractions)?;
        println!("-- {} {:?}, nnz {} --", spec.name, full.shape(), full.nnz());

        let mut rows: Vec<Vec<String>> = Vec::new();
        for partitioner in [Partitioner::Gtp, Partitioner::Mtp] {
            let cluster = ClusterConfig::new(WORKERS)
                .with_partitioner(partitioner)
                .with_parts_per_mode(vec![PARTS; full.order()]);

            // ---- DisMASTD: DTD over the complement, warm factors ----------
            let method = format!("DisMASTD-{}", partitioner.name());
            let prime = dismastd_core::als::cp_als(stream.snapshot(0), &cfg)?;
            let mut prev = prime.kruskal;
            let mut prev_shape = stream.snapshot(0).shape().to_vec();
            for t in 1..stream.len() {
                let snap = stream.snapshot(t);
                let complement = snap.complement(&prev_shape)?;
                let (serial_iter, serial_out) =
                    measure_serial_iter(&complement, prev.factors(), &cfg)?;
                let dist = dismastd(&complement, prev.factors(), &cfg, &cluster)?;
                let (max_load, _) = placement_profile(&complement, partitioner, PARTS, WORKERS)?;
                let profile = profile_from_run(&complement, &dist, max_load, WORKERS, PARTS);
                let modeled = modeled_iter_time(serial_iter, &profile, &ctx.cost);
                rows.push(vec![
                    method.clone(),
                    format!("{:.0}%", fractions[t] * 100.0),
                    complement.nnz().to_string(),
                    secs(modeled),
                    secs(dist.time_per_iter()),
                    format!("{:.1}", profile.bytes_per_iter as f64 / 1024.0),
                ]);
                records.push(ResultRecord {
                    experiment: "fig5".into(),
                    dataset: spec.name.clone(),
                    method: method.clone(),
                    x: fractions[t] * 100.0,
                    value: modeled.as_secs_f64(),
                    extra: BTreeMap::from([
                        ("measured_iter_s".into(), dist.time_per_iter().as_secs_f64()),
                        ("processed_nnz".into(), complement.nnz() as f64),
                        ("bytes_per_iter".into(), profile.bytes_per_iter as f64),
                    ]),
                });
                prev = serial_out.kruskal;
                prev_shape = snap.shape().to_vec();
            }

            // ---- DMS-MG: static re-decomposition of the full snapshot -----
            let method = format!("DMS-MG-{}", partitioner.name());
            for t in 1..stream.len() {
                let snap = stream.snapshot(t);
                let zero_old: Vec<Matrix> = (0..snap.order())
                    .map(|_| Matrix::zeros(0, cfg.rank))
                    .collect();
                let (serial_iter, _) = measure_serial_iter(snap, &zero_old, &cfg)?;
                let dist = dms_mg(snap, &cfg, &cluster)?;
                let (max_load, _) = placement_profile(snap, partitioner, PARTS, WORKERS)?;
                let profile = profile_from_run(snap, &dist, max_load, WORKERS, PARTS);
                let modeled = modeled_iter_time(serial_iter, &profile, &ctx.cost);
                rows.push(vec![
                    method.clone(),
                    format!("{:.0}%", fractions[t] * 100.0),
                    snap.nnz().to_string(),
                    secs(modeled),
                    secs(dist.time_per_iter()),
                    format!("{:.1}", profile.bytes_per_iter as f64 / 1024.0),
                ]);
                records.push(ResultRecord {
                    experiment: "fig5".into(),
                    dataset: spec.name.clone(),
                    method: method.clone(),
                    x: fractions[t] * 100.0,
                    value: modeled.as_secs_f64(),
                    extra: BTreeMap::from([
                        ("measured_iter_s".into(), dist.time_per_iter().as_secs_f64()),
                        ("processed_nnz".into(), snap.nnz() as f64),
                        ("bytes_per_iter".into(), profile.bytes_per_iter as f64),
                    ]),
                });
            }
        }
        print_table(
            &[
                "method",
                "step",
                "processed nnz",
                "modeled s/iter",
                "measured s/iter",
                "KB/iter",
            ],
            &rows,
        );

        // Headline comparison at the 100% step.
        let at = |m: &str| {
            records
                .iter()
                .rev()
                .find(|r| r.dataset == spec.name && r.method == m && r.x == 100.0)
                .map(|r| r.value)
                .unwrap_or(f64::NAN)
        };
        let best_dis = at("DisMASTD-MTP").min(at("DisMASTD-GTP"));
        let best_dms = at("DMS-MG-MTP").min(at("DMS-MG-GTP"));
        println!(
            "=> at 100%: DisMASTD {:.4}s/iter vs DMS-MG {:.4}s/iter  ({:.1}x)\n",
            best_dis,
            best_dms,
            best_dms / best_dis
        );
    }
    save_records("fig5", &records)?;
    Ok(())
}

//! **Ablations** — the design-choice studies DESIGN.md calls out, beyond the
//! paper's own figures:
//!
//! 1. forgetting factor `μ` (Eq. 2) — accuracy across a stream;
//! 2. CP rank `R` — time per iteration (Theorem 2 predicts ~linear in `R`
//!    for the MTTKRP-dominated regime) and fit;
//! 3. loss reuse (Sec. IV-B4) — reused `Σ_i Â[i,:]·A[i,:]` inner product
//!    vs a fresh `O(nnz·N·R)` pass;
//! 4. cell placement — medium-grain block grid (locality) vs max-min
//!    scatter (balance): bytes moved and load imbalance;
//! 5. OnlineCP (Table I's one-mode streaming family) vs DTD on a one-mode
//!    stream.
//!
//! ```text
//! cargo run -p dismastd-bench --release --bin ablations
//! ```

use dismastd_bench::{print_table, save_records, ExperimentContext, ResultRecord};
use dismastd_core::distributed::dismastd;
use dismastd_core::{ClusterConfig, DecompConfig, ExecutionMode, StreamingSession};
use dismastd_data::{DatasetSpec, StreamSequence};
use dismastd_partition::{BalanceStats, CellAssignment, GridPartition, Partitioner};
use dismastd_tensor::mttkrp::{inner_from_mttkrp, mttkrp};
use dismastd_tensor::{KruskalTensor, SparseTensor};
use std::collections::BTreeMap;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = ExperimentContext::from_env();
    let mut records: Vec<ResultRecord> = Vec::new();
    let full = DatasetSpec::netflix(ctx.scale.min(0.5)).generate()?;
    let stream = StreamSequence::cut(&full, &[0.7, 0.8, 0.9, 1.0])?;

    ablation_mu(&stream, &mut records)?;
    ablation_rank(&stream, &mut records)?;
    ablation_loss_reuse(&full, &mut records)?;
    ablation_placement(&stream, &mut records)?;
    baseline_onlinecp(&full, &mut records)?;

    save_records("ablations", &records)?;
    Ok(())
}

/// 5\. OnlineCP (one-mode streaming baseline, Table I) vs DTD on a stream
/// that grows only in the last mode — the one setting where both apply.
fn baseline_onlinecp(
    full: &SparseTensor,
    records: &mut Vec<ResultRecord>,
) -> Result<(), Box<dyn std::error::Error>> {
    use dismastd_core::OnlineCp;
    println!("== Baseline: OnlineCP vs DTD on a one-mode stream ==\n");
    let shape = full.shape().to_vec();
    let order = shape.len();
    let t_total = shape[order - 1];
    let t0 = (t_total * 7) / 10;
    let mut first_bounds = shape.clone();
    first_bounds[order - 1] = t0;
    let x0 = full.restrict(&first_bounds)?;

    let cfg = DecompConfig::default().with_rank(8).with_max_iters(8);
    // OnlineCP path.
    let start = Instant::now();
    let mut online = OnlineCp::init(&x0, &cfg)?;
    let init_time = start.elapsed();
    let mut steps = Vec::new();
    let step = ((t_total - t0) / 3).max(1);
    let mut lo = t0;
    while lo < t_total {
        let hi = (lo + step).min(t_total);
        steps.push((lo, hi));
        lo = hi;
    }
    let mut online_update = std::time::Duration::ZERO;
    for &(lo, hi) in &steps {
        // Batch with local temporal indices.
        let mut b = dismastd_tensor::SparseTensorBuilder::new({
            let mut s = shape.clone();
            s[order - 1] = hi - lo;
            s
        });
        for (idx, v) in full.iter() {
            let t = idx[order - 1];
            if t < lo || t >= hi {
                continue;
            }
            let mut local = idx.to_vec();
            local[order - 1] = t - lo;
            b.push(&local, v)?;
        }
        let delta = b.build()?;
        let s = Instant::now();
        online.ingest_slices(&delta)?;
        online_update += s.elapsed();
    }
    let online_fit = online.kruskal()?.fit(full)?;

    // DTD path on the same one-mode stream.
    let start = Instant::now();
    let prime = dismastd_core::als::cp_als(&x0, &cfg)?;
    let dtd_init = start.elapsed();
    let mut prev = prime.kruskal;
    let mut prev_shape = first_bounds.clone();
    let mut dtd_update = std::time::Duration::ZERO;
    for &(_, hi) in &steps {
        let mut bounds = shape.clone();
        bounds[order - 1] = hi;
        let snap = full.restrict(&bounds)?;
        let complement = snap.complement(&prev_shape)?;
        let s = Instant::now();
        let out = dismastd_core::dtd(&complement, prev.factors(), &cfg)?;
        dtd_update += s.elapsed();
        prev = out.kruskal;
        prev_shape = bounds;
    }
    let dtd_fit = prev.fit(full)?;

    print_table(
        &["method", "init s", "total update s", "final fit"],
        &[
            vec![
                "OnlineCP".into(),
                format!("{:.3}", init_time.as_secs_f64()),
                format!("{:.3}", online_update.as_secs_f64()),
                format!("{online_fit:.4}"),
            ],
            vec![
                "DTD".into(),
                format!("{:.3}", dtd_init.as_secs_f64()),
                format!("{:.3}", dtd_update.as_secs_f64()),
                format!("{dtd_fit:.4}"),
            ],
        ],
    );
    println!("(comparable fits on one-mode growth; only DTD also handles multi-aspect growth)\n");
    records.push(ResultRecord {
        experiment: "baseline_onlinecp".into(),
        dataset: "Netflix".into(),
        method: "OnlineCP".into(),
        x: 0.0,
        value: online_fit,
        extra: BTreeMap::from([("update_s".into(), online_update.as_secs_f64())]),
    });
    records.push(ResultRecord {
        experiment: "baseline_onlinecp".into(),
        dataset: "Netflix".into(),
        method: "DTD".into(),
        x: 0.0,
        value: dtd_fit,
        extra: BTreeMap::from([("update_s".into(), dtd_update.as_secs_f64())]),
    });
    Ok(())
}

/// 1. Forgetting factor sweep: stream all snapshots, report the final fit.
fn ablation_mu(
    stream: &StreamSequence,
    records: &mut Vec<ResultRecord>,
) -> Result<(), Box<dyn std::error::Error>> {
    println!("== Ablation 1: forgetting factor μ ==\n");
    let mut rows = Vec::new();
    for mu in [0.2f64, 0.4, 0.6, 0.8, 1.0] {
        let cfg = DecompConfig::default()
            .with_rank(8)
            .with_max_iters(8)
            .with_forgetting(mu);
        let mut session = StreamingSession::new(cfg, ExecutionMode::Serial);
        let mut final_fit = 0.0;
        let mut final_loss = 0.0;
        for snap in stream.iter() {
            let r = session.ingest(snap)?;
            final_fit = r.fit;
            final_loss = r.loss;
        }
        rows.push(vec![
            format!("{mu:.1}"),
            format!("{final_fit:.4}"),
            format!("{final_loss:.2}"),
        ]);
        records.push(ResultRecord {
            experiment: "ablation_mu".into(),
            dataset: "Netflix".into(),
            method: "DisMASTD".into(),
            x: mu,
            value: final_fit,
            extra: BTreeMap::from([("loss".into(), final_loss)]),
        });
    }
    print_table(&["mu", "final fit", "final loss"], &rows);
    println!();
    Ok(())
}

/// 2. Rank sweep: serial time/iteration and fit at the last stream step.
fn ablation_rank(
    stream: &StreamSequence,
    records: &mut Vec<ResultRecord>,
) -> Result<(), Box<dyn std::error::Error>> {
    println!("== Ablation 2: CP rank R ==\n");
    let mut rows = Vec::new();
    for rank in [5usize, 10, 20, 40] {
        let cfg = DecompConfig::default().with_rank(rank).with_max_iters(5);
        let prev = dismastd_core::als::cp_als(stream.snapshot(stream.len() - 2), &cfg)?;
        let complement = stream
            .snapshot(stream.len() - 1)
            .complement(stream.snapshot(stream.len() - 2).shape())?;
        let start = Instant::now();
        let out = dismastd_core::dtd(&complement, prev.kruskal.factors(), &cfg)?;
        let per_iter = start.elapsed() / out.iterations.max(1) as u32;
        let fit = out.kruskal.fit(stream.snapshot(stream.len() - 1))?;
        rows.push(vec![
            rank.to_string(),
            format!("{:.4}", per_iter.as_secs_f64()),
            format!("{fit:.4}"),
        ]);
        records.push(ResultRecord {
            experiment: "ablation_rank".into(),
            dataset: "Netflix".into(),
            method: "DTD".into(),
            x: rank as f64,
            value: per_iter.as_secs_f64(),
            extra: BTreeMap::from([("fit".into(), fit)]),
        });
    }
    print_table(&["rank", "s/iter", "fit"], &rows);
    println!("(Theorem 2: the nnz·N·R term should make s/iter ~linear in R)\n");
    Ok(())
}

/// 3\. Loss reuse: the Sec. IV-B4 inner product from the kept MTTKRP vs a
/// fresh pass over the nonzeros, at several tensor sizes.
fn ablation_loss_reuse(
    full: &SparseTensor,
    records: &mut Vec<ResultRecord>,
) -> Result<(), Box<dyn std::error::Error>> {
    println!("== Ablation 3: loss computation — reuse vs fresh pass ==\n");
    let mut rows = Vec::new();
    for frac in [0.25f64, 0.5, 1.0] {
        let bounds: Vec<usize> = full
            .shape()
            .iter()
            .map(|&s| ((s as f64 * frac).ceil() as usize).clamp(1, s))
            .collect();
        let t = full.restrict(&bounds)?;
        let factors: Vec<dismastd_tensor::Matrix> = {
            use rand::SeedableRng;
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
            t.shape()
                .iter()
                .map(|&s| dismastd_tensor::Matrix::random(s, 10, &mut rng))
                .collect()
        };
        let kruskal = KruskalTensor::new(factors.clone())?;
        let hat = mttkrp(&t, &factors, t.order() - 1)?;

        let time_of = |f: &dyn Fn() -> f64| {
            let start = Instant::now();
            let mut acc = 0.0;
            let reps = 20;
            for _ in 0..reps {
                acc += f();
            }
            (start.elapsed() / reps, acc)
        };
        let (reuse_t, a) =
            // lint:allow(panic_path): invariant — factors were built from t's shape above
            time_of(&|| inner_from_mttkrp(&hat, &factors[t.order() - 1]).expect("shapes agree"));
        // lint:allow(panic_path): invariant — factors were built from t's shape above
        let (fresh_t, b) = time_of(&|| kruskal.inner_sparse(&t).expect("shapes agree"));
        assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()), "methods disagree");
        let speedup = fresh_t.as_secs_f64() / reuse_t.as_secs_f64().max(1e-12);
        rows.push(vec![
            t.nnz().to_string(),
            format!("{:.2}", reuse_t.as_secs_f64() * 1e6),
            format!("{:.2}", fresh_t.as_secs_f64() * 1e6),
            format!("{speedup:.0}x"),
        ]);
        records.push(ResultRecord {
            experiment: "ablation_loss_reuse".into(),
            dataset: "Netflix".into(),
            method: "reuse".into(),
            x: t.nnz() as f64,
            value: speedup,
            extra: BTreeMap::new(),
        });
    }
    print_table(&["nnz", "reuse µs", "fresh-pass µs", "speedup"], &rows);
    println!("(the reused inner product is O(I·R), independent of nnz)\n");
    Ok(())
}

/// 4. Placement strategy: locality (BlockGrid) vs balance (Scatter).
fn ablation_placement(
    stream: &StreamSequence,
    records: &mut Vec<ResultRecord>,
) -> Result<(), Box<dyn std::error::Error>> {
    println!("== Ablation 4: cell placement — block grid vs scatter ==\n");
    let cfg = DecompConfig::default().with_rank(10).with_max_iters(3);
    let prev = dismastd_core::als::cp_als(stream.snapshot(stream.len() - 2), &cfg)?;
    let complement = stream
        .snapshot(stream.len() - 1)
        .complement(stream.snapshot(stream.len() - 2).shape())?;
    let workers = 8;
    let mut rows = Vec::new();
    for (name, assignment) in [
        ("BlockGrid", CellAssignment::BlockGrid),
        ("Scatter", CellAssignment::Scatter),
    ] {
        let cluster = ClusterConfig::new(workers).with_cell_assignment(assignment);
        let out = dismastd(&complement, prev.kruskal.factors(), &cfg, &cluster)?;
        let grid = GridPartition::build_with(
            &complement,
            Partitioner::Mtp,
            &vec![workers; complement.order()],
            workers,
            assignment,
        )?;
        let balance = BalanceStats::from_loads(&grid.worker_loads(&complement));
        let kb_per_iter = out.comm.bytes as f64 / 1024.0 / out.iterations.max(1) as f64;
        rows.push(vec![
            name.to_string(),
            format!("{kb_per_iter:.1}"),
            format!("{:.3}", balance.imbalance),
            format!("{:.3}", balance.cv),
        ]);
        records.push(ResultRecord {
            experiment: "ablation_placement".into(),
            dataset: "Netflix".into(),
            method: name.into(),
            x: workers as f64,
            value: kb_per_iter,
            extra: BTreeMap::from([
                ("imbalance".into(), balance.imbalance),
                ("cv".into(), balance.cv),
            ]),
        });
    }
    print_table(&["placement", "KB/iter", "max/mean load", "load CV"], &rows);
    println!("(block grid trades a little balance for much less traffic)\n");
    Ok(())
}

//! **Phases** — per-phase time breakdown of one streaming step, serial and
//! distributed, from the observability layer's span registry.
//!
//! ```text
//! cargo run -p dismastd-bench --release --bin phases [workers] [iters]
//! ```
//!
//! `workers` is a comma-separated worker-count list (`1` runs serial mode);
//! `iters` caps the ALS iterations per step.  Both fall back to the
//! `DISMASTD_WORKERS` / `DISMASTD_ITERS` environment variables and then to
//! the defaults `1,2,4` and `5`.
//!
//! Unlike the figure bins, which model cluster wall-clock, this bin answers
//! "where does the step spend its time": MTTKRP vs solve vs Gram rebuild vs
//! row exchange, per configuration, as fractions of the step's wall-clock.
//! Records land in `bench_results/phases.jsonl` with one row per
//! configuration, the phase fractions in `extra`, and — for distributed
//! rows — the per-rank byte breakdown and wire-level compression figures.

use dismastd_bench::{print_table, save_records, ExperimentContext, ResultRecord};
use dismastd_core::{ClusterConfig, DecompConfig, ExecutionMode, StepReport, StreamingSession};
use dismastd_data::{DatasetSpec, StreamSequence};
use std::collections::BTreeMap;

/// Cores the host actually exposes — recorded next to the thread policy so
/// rows from a 1-core container are not mistaken for a scaling failure.
fn host_cores() -> f64 {
    std::thread::available_parallelism().map_or(1.0, |n| n.get() as f64)
}

/// The non-overlapping phase spans, in pipeline order.
const PHASES: [&str; 10] = [
    "phase/validate",
    "phase/complement",
    "phase/partition",
    "phase/plan_build",
    "phase/setup",
    "phase/mttkrp",
    "phase/exchange",
    "phase/solve",
    "phase/gram",
    "phase/loss",
];

/// First CLI argument, else the environment variable, else the default.
fn arg_or_env(position: usize, var: &str) -> Option<String> {
    std::env::args()
        .nth(position)
        .or_else(|| std::env::var(var).ok())
}

/// Parses the worker-count sweep (`"1,2,4"`).
fn parse_workers(raw: Option<String>) -> Result<Vec<usize>, Box<dyn std::error::Error>> {
    let Some(raw) = raw else {
        return Ok(vec![1, 2, 4]);
    };
    let mut out = Vec::new();
    for part in raw.split(',') {
        let w: usize = part.trim().parse().map_err(|e| {
            format!("bad worker count {part:?} in {raw:?}: {e} (expected e.g. \"1,2,4\")")
        })?;
        if w == 0 {
            return Err(format!("worker count 0 in {raw:?} is invalid").into());
        }
        out.push(w);
    }
    Ok(out)
}

/// Runs one two-snapshot stream (cold start + incremental step) and returns
/// the incremental step's report, with metrics collected.
fn run_step(
    spec: &DatasetSpec,
    cfg: &DecompConfig,
    mode: ExecutionMode,
) -> Result<StepReport, Box<dyn std::error::Error>> {
    let full = spec.generate()?;
    let stream = StreamSequence::cut(&full, &[0.9, 1.0])?;
    let mut session = StreamingSession::new(*cfg, mode);
    session.set_collect_metrics(true);
    session.ingest(stream.snapshot(0))?;
    Ok(session.ingest(stream.snapshot(1))?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = ExperimentContext::from_env();
    let worker_counts = parse_workers(arg_or_env(1, "DISMASTD_WORKERS"))?;
    let iters: usize = match arg_or_env(2, "DISMASTD_ITERS") {
        Some(raw) => raw
            .trim()
            .parse()
            .map_err(|e| format!("bad iteration count {raw:?}: {e}"))?,
        None => 5,
    };
    let cfg = DecompConfig::default().with_max_iters(iters);
    let spec = DatasetSpec::synthetic(ctx.scale);
    let mut records: Vec<ResultRecord> = Vec::new();

    println!(
        "== Per-phase breakdown of one incremental step ({}, scale {:.2}, {} iters) ==\n",
        spec.name, ctx.scale, iters
    );
    let configs: Vec<(String, ExecutionMode)> = worker_counts
        .into_iter()
        .map(|w| {
            if w == 1 {
                ("serial".to_string(), ExecutionMode::Serial)
            } else {
                (
                    format!("dist-{w}"),
                    ExecutionMode::Distributed(ClusterConfig::new(w)),
                )
            }
        })
        .collect();

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (name, mode) in configs {
        let workers = match &mode {
            ExecutionMode::Serial => 1.0,
            ExecutionMode::Distributed(c) => c.workers as f64,
        };
        let report = run_step(&spec, &cfg, mode)?;
        let metrics = report
            .metrics
            .as_ref()
            .ok_or("metrics were not collected")?;
        let elapsed_ns = report.elapsed.as_nanos() as f64;

        // In distributed mode the merged snapshot holds every rank's spans,
        // so phase time can exceed wall-clock; normalise by total phase
        // time instead to keep fractions comparable across configurations.
        let phase_ns = metrics.phase_total_ns() as f64;
        let mut extra = BTreeMap::from([
            ("elapsed_s".into(), report.elapsed.as_secs_f64()),
            ("phase_total_s".into(), phase_ns / 1e9),
            ("iterations".into(), report.iterations as f64),
            // Intra-worker parallelism context: the per-rank pool width the
            // config resolved to, the host's core budget, and how the
            // adaptive selector split the grid cells between the naive COO
            // kernel and the sorted-run plan.
            (
                "threads".into(),
                cfg.threads.resolve_for_world(workers as usize) as f64,
            ),
            ("cores".into(), host_cores()),
            (
                "cells_coo".into(),
                metrics.counter_value("plan/adaptive_coo") as f64,
            ),
            (
                "cells_plan".into(),
                metrics.counter_value("plan/adaptive_plan") as f64,
            ),
        ]);
        if let Some(comm) = &report.comm {
            extra.insert("bytes_total".into(), comm.bytes as f64);
            extra.insert("wire_bytes".into(), comm.wire_bytes() as f64);
            extra.insert("compression_ratio".into(), comm.compression_ratio());
            if !comm.bytes_by_sender.is_empty() {
                let mean = comm.bytes as f64 / comm.bytes_by_sender.len() as f64;
                extra.insert("bytes_per_rank".into(), mean);
                for (rank, &b) in comm.bytes_by_sender.iter().enumerate() {
                    extra.insert(format!("bytes_rank{rank}"), b as f64);
                }
            }
        }
        let mut row = vec![name.clone(), format!("{:.4}", elapsed_ns / 1e9)];
        for phase in PHASES {
            let ns = metrics.span_total_ns(phase) as f64;
            let frac = if phase_ns > 0.0 { ns / phase_ns } else { 0.0 };
            let short = phase.trim_start_matches("phase/");
            extra.insert(format!("frac_{short}"), frac);
            row.push(format!("{:.1}%", 100.0 * frac));
        }
        rows.push(row);
        records.push(ResultRecord {
            experiment: "phases".into(),
            dataset: spec.name.clone(),
            method: name,
            x: workers,
            value: phase_ns / 1e9,
            extra,
        });
    }

    let mut headers: Vec<&str> = vec!["config", "elapsed s"];
    for phase in PHASES {
        headers.push(phase.trim_start_matches("phase/"));
    }
    print_table(&headers, &rows);
    println!("\n(fractions of total phase time; distributed rows sum every rank's spans)");
    save_records("phases", &records)?;
    Ok(())
}

//! Experiment harness for reproducing every table and figure of the paper.
//!
//! ## Methodology
//!
//! The paper ran on a 15-node Spark cluster; this reproduction runs on one
//! machine.  Per-worker *work* and *network traffic* are exact — the
//! simulated cluster partitions real data, runs the real algorithm, and
//! counts every byte — but wall-clock on an oversubscribed host would
//! conflate timesharing with algorithmic cost.  Each experiment therefore
//! reports two times:
//!
//! * **measured** — wall-clock of the in-process run (exact but
//!   host-dependent);
//! * **modeled** — a cluster-time projection assembled from measured
//!   single-thread throughput and the run's own placement and traffic:
//!
//! ```text
//! T_iter = T_serial_iter · (max_worker_load / nnz)     // compute, balance-aware
//!        + stage_startup · Σ_n ceil(p_n / M) · stages  // Spark task waves
//!        + bytes_per_iter / bandwidth                  // Gigabit Ethernet
//!        + collectives_per_iter · latency
//! ```
//!
//! The first term is why MTP beats GTP (smaller max load), the second is
//! why tiny datasets stop speeding up with more nodes (the paper's Fig. 7
//! observation) and why partition counts above the node count hurt
//! (Fig. 6), and the third grows with `M` exactly as Theorem 4 predicts.

use dismastd_cluster::CostModel;
use dismastd_core::distributed::DistOutput;
use dismastd_core::{DecompConfig, DtdOutput};
use dismastd_partition::{GridPartition, Partitioner};
use dismastd_tensor::{Matrix, Result, SparseTensor};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Number of distributed stages per mode per iteration (MTTKRP + partial
/// routing, row update + row shipping, Gram all-reduce).
pub const STAGES_PER_MODE: u64 = 3;

/// Experiment-wide knobs, read once from the environment.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentContext {
    /// Dataset scale factor (`DISMASTD_SCALE`, default 0.25).
    pub scale: f64,
    /// Cluster cost model for projected times.
    pub cost: CostModel,
}

impl ExperimentContext {
    /// Reads `DISMASTD_SCALE` (default 0.25) and `DISMASTD_COST`
    /// (`scaled` (default) or `spark`) from the environment.
    pub fn from_env() -> Self {
        let scale = std::env::var("DISMASTD_SCALE")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|s| *s > 0.0)
            .unwrap_or(0.25);
        let cost = match std::env::var("DISMASTD_COST").as_deref() {
            Ok("spark") => CostModel::spark_like(),
            _ => CostModel::scaled_testbed(),
        };
        ExperimentContext { scale, cost }
    }
}

/// Everything needed to project one distributed phase onto the cost model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PhaseProfile {
    /// Nonzeros processed per iteration.
    pub nnz: u64,
    /// Heaviest worker's nonzero load under the chosen placement.
    pub max_worker_load: u64,
    /// Bytes crossing the network per iteration.
    pub bytes_per_iter: u64,
    /// Collective operations per iteration.
    pub collectives_per_iter: u64,
    /// Workers `M`.
    pub workers: usize,
    /// Partitions per mode `p_n`.
    pub parts_per_mode: usize,
    /// Tensor order `N`.
    pub order: usize,
}

/// Projects one iteration of a distributed phase onto the cost model, given
/// the measured single-thread time per iteration for the same work.
pub fn modeled_iter_time(
    serial_iter: Duration,
    profile: &PhaseProfile,
    cost: &CostModel,
) -> Duration {
    let compute = if profile.nnz == 0 {
        // Degenerate (empty complement): compute is the per-row factor
        // update only; attribute it evenly.
        serial_iter / profile.workers as u32
    } else {
        serial_iter.mul_f64(profile.max_worker_load as f64 / profile.nnz as f64)
    };
    let waves: u64 = (0..profile.order)
        .map(|_| (profile.parts_per_mode as u64).div_ceil(profile.workers as u64) * STAGES_PER_MODE)
        .sum();
    cost.phase_time(
        compute,
        waves,
        profile.collectives_per_iter,
        profile.bytes_per_iter,
    )
}

/// Measures the serial time per ALS iteration for the given problem —
/// the calibration constant of the cost projection.
///
/// # Errors
/// Propagates solver errors.
pub fn measure_serial_iter(
    complement: &SparseTensor,
    old_factors: &[Matrix],
    cfg: &DecompConfig,
) -> Result<(Duration, DtdOutput)> {
    let start = std::time::Instant::now();
    let out = dismastd_core::dtd(complement, old_factors, cfg)?;
    let elapsed = start.elapsed();
    let iters = out.iterations.max(1) as u32;
    Ok((elapsed / iters, out))
}

/// Derives the per-worker load profile for a placement without running it.
///
/// # Errors
/// Propagates partitioning errors.
pub fn placement_profile(
    tensor: &SparseTensor,
    partitioner: Partitioner,
    parts_per_mode: usize,
    workers: usize,
) -> Result<(u64, GridPartition)> {
    let grid = GridPartition::build(
        tensor,
        partitioner,
        &vec![parts_per_mode; tensor.order()],
        workers,
    )?;
    let max_load = grid.worker_loads(tensor).into_iter().max().unwrap_or(0);
    Ok((max_load, grid))
}

/// Assembles the [`PhaseProfile`] of a finished distributed run.
pub fn profile_from_run(
    tensor: &SparseTensor,
    out: &DistOutput,
    max_worker_load: u64,
    workers: usize,
    parts_per_mode: usize,
) -> PhaseProfile {
    let iters = out.iterations.max(1) as u64;
    PhaseProfile {
        nnz: tensor.nnz() as u64,
        max_worker_load,
        // Wire bytes, not logical: a compressed run should project the
        // transfer term from what actually crosses the network.
        bytes_per_iter: out.comm.wire_bytes() / iters,
        collectives_per_iter: out.comm.collectives / iters,
        workers,
        parts_per_mode,
        order: tensor.order(),
    }
}

/// One row of experiment output, serialised to `bench_results/*.jsonl`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResultRecord {
    /// Experiment id ("fig5", "table4", …).
    pub experiment: String,
    /// Dataset name.
    pub dataset: String,
    /// Method name ("DisMASTD-MTP", "DMS-MG-GTP", …).
    pub method: String,
    /// The x-axis value (stream step, partition count, node count, …).
    pub x: f64,
    /// Primary measurement (seconds per iteration, or std-dev for Table IV).
    pub value: f64,
    /// Secondary measurements by name.
    pub extra: std::collections::BTreeMap<String, f64>,
}

/// Writes records as JSON lines under `bench_results/`.
///
/// # Errors
/// Propagates filesystem errors.
pub fn save_records(name: &str, records: &[ResultRecord]) -> std::io::Result<()> {
    std::fs::create_dir_all("bench_results")?;
    let path = format!("bench_results/{name}.jsonl");
    let mut body = String::new();
    for r in records {
        body.push_str(&serde_json::to_string(r).map_err(std::io::Error::other)?);
        body.push('\n');
    }
    std::fs::write(&path, body)?;
    eprintln!("[saved {path}]");
    Ok(())
}

/// Renders an aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>())
    );
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1)))
    );
    for row in rows {
        println!("{}", line(row));
    }
}

/// Formats a duration in seconds with 4 decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.4}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dismastd_tensor::SparseTensorBuilder;

    fn tiny_tensor() -> SparseTensor {
        let mut b = SparseTensorBuilder::new(vec![6, 6, 6]);
        for i in 0..6 {
            b.push(&[i, (i + 1) % 6, (i + 2) % 6], 1.0).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn modeled_time_monotone_in_load_and_bytes() {
        let cost = CostModel::spark_like();
        let base = PhaseProfile {
            nnz: 1000,
            max_worker_load: 250,
            bytes_per_iter: 1 << 20,
            collectives_per_iter: 10,
            workers: 4,
            parts_per_mode: 4,
            order: 3,
        };
        let serial = Duration::from_millis(100);
        let t0 = modeled_iter_time(serial, &base, &cost);
        let heavier = PhaseProfile {
            max_worker_load: 500,
            ..base
        };
        assert!(modeled_iter_time(serial, &heavier, &cost) > t0);
        let chattier = PhaseProfile {
            bytes_per_iter: 1 << 24,
            ..base
        };
        assert!(modeled_iter_time(serial, &chattier, &cost) > t0);
    }

    #[test]
    fn modeled_time_startup_floor() {
        // With trivial compute, the modeled time approaches the task-wave
        // startup floor — the Fig. 7 saturation.
        let cost = CostModel::spark_like();
        let profile = PhaseProfile {
            nnz: 100,
            max_worker_load: 7,
            bytes_per_iter: 0,
            collectives_per_iter: 0,
            workers: 15,
            parts_per_mode: 15,
            order: 3,
        };
        let t = modeled_iter_time(Duration::from_micros(10), &profile, &cost);
        // 3 modes × 3 stages × 1 wave × 50ms = 450ms.
        assert!(t >= Duration::from_millis(450));
        assert!(t < Duration::from_millis(500));
    }

    #[test]
    fn modeled_time_partition_overhead_grows_past_workers() {
        // Fig. 6: partitions ≫ workers cost extra task waves.
        let cost = CostModel::spark_like();
        let serial = Duration::from_millis(10);
        let mk = |parts: usize| PhaseProfile {
            nnz: 1000,
            max_worker_load: 1000 / 4,
            bytes_per_iter: 0,
            collectives_per_iter: 0,
            workers: 4,
            parts_per_mode: parts,
            order: 3,
        };
        let at4 = modeled_iter_time(serial, &mk(4), &cost);
        let at16 = modeled_iter_time(serial, &mk(16), &cost);
        assert!(at16 > at4 * 2);
    }

    #[test]
    fn placement_profile_counts_all_nonzeros() {
        let t = tiny_tensor();
        let (max_load, grid) = placement_profile(&t, Partitioner::Mtp, 2, 2).unwrap();
        let loads = grid.worker_loads(&t);
        assert_eq!(loads.iter().sum::<u64>(), t.nnz() as u64);
        assert_eq!(max_load, *loads.iter().max().unwrap());
    }

    #[test]
    fn serial_measurement_runs() {
        let t = tiny_tensor();
        let old: Vec<Matrix> = (0..3).map(|_| Matrix::zeros(0, 2)).collect();
        let cfg = DecompConfig::default().with_rank(2).with_max_iters(2);
        let (iter_time, out) = measure_serial_iter(&t, &old, &cfg).unwrap();
        assert_eq!(out.iterations, 2);
        assert!(iter_time > Duration::ZERO);
    }

    #[test]
    fn context_reads_env() {
        let ctx = ExperimentContext::from_env();
        assert!(ctx.scale > 0.0);
    }

    #[test]
    fn table_rendering_does_not_panic() {
        print_table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert_eq!(secs(Duration::from_millis(1500)), "1.5000");
    }
}

//! The central correctness contract of the distributed engine: for any
//! worker count and either partitioner, distributed DisMASTD follows the
//! same optimisation trajectory as the serial DTD solver (up to
//! floating-point summation order).

use dismastd_core::distributed::{dismastd, dms_mg};
use dismastd_core::{dtd, ClusterConfig, DecompConfig};
use dismastd_integration_tests::{random_complement, random_factors, random_tensor};
use dismastd_partition::Partitioner;

fn assert_traces_close(serial: &[f64], dist: &[f64], tol: f64, what: &str) {
    assert_eq!(serial.len(), dist.len(), "{what}: iteration counts differ");
    for (i, (a, b)) in serial.iter().zip(dist).enumerate() {
        assert!(
            (a - b).abs() < tol * (1.0 + a.abs()),
            "{what}: iter {i}: serial {a} vs distributed {b}"
        );
    }
}

#[test]
fn dismastd_equivalence_across_worker_counts() {
    let old_shape = [8usize, 7, 6];
    let new_shape = [12usize, 11, 9];
    let old = random_factors(&old_shape, 4, 1);
    let x = random_complement(&old_shape, &new_shape, 300, 2);
    let cfg = DecompConfig::default().with_rank(4).with_max_iters(7);

    let serial = dtd(&x, &old, &cfg).expect("serial runs");
    for workers in [1usize, 2, 3, 5, 8] {
        for p in [Partitioner::Gtp, Partitioner::Mtp] {
            let out = dismastd(
                &x,
                &old,
                &cfg,
                &ClusterConfig::new(workers).with_partitioner(p),
            )
            .expect("distributed runs");
            assert_traces_close(
                &serial.loss_trace,
                &out.loss_trace,
                1e-6,
                &format!("workers={workers} {p:?}"),
            );
            // Final factors agree entry-wise.
            for (fs, fd) in serial.kruskal.factors().iter().zip(out.kruskal.factors()) {
                assert!(
                    fs.max_abs_diff(fd).expect("same shape") < 1e-5,
                    "workers={workers} {p:?}: factors diverged"
                );
            }
        }
    }
}

#[test]
fn dmsmg_equivalence_with_static_als() {
    let x = random_tensor(&[14, 12, 10], 400, 3);
    let cfg = DecompConfig::default().with_rank(4).with_max_iters(6);
    let serial = dismastd_core::als::cp_als(&x, &cfg).expect("als runs");
    for workers in [2usize, 4, 6] {
        let out = dms_mg(&x, &cfg, &ClusterConfig::new(workers)).expect("runs");
        assert_traces_close(
            &serial.loss_trace,
            &out.loss_trace,
            1e-6,
            &format!("dms-mg workers={workers}"),
        );
    }
}

#[test]
fn fourth_order_distributed_equivalence() {
    let old_shape = [4usize, 4, 3, 3];
    let new_shape = [6usize, 6, 5, 4];
    let old = random_factors(&old_shape, 3, 5);
    let x = random_complement(&old_shape, &new_shape, 150, 6);
    let cfg = DecompConfig::default().with_rank(3).with_max_iters(5);
    let serial = dtd(&x, &old, &cfg).expect("serial runs");
    let out = dismastd(&x, &old, &cfg, &ClusterConfig::new(3)).expect("runs");
    assert_traces_close(&serial.loss_trace, &out.loss_trace, 1e-6, "order-4");
}

#[test]
fn communication_scales_with_workers_not_iterations_blowup() {
    let x = random_tensor(&[20, 20, 20], 800, 7);
    let cfg = DecompConfig::default().with_rank(4).with_max_iters(4);
    let mut last_bytes = 0u64;
    for workers in [2usize, 4, 8] {
        let out = dms_mg(&x, &cfg, &ClusterConfig::new(workers)).expect("runs");
        // More workers → more cross-worker row traffic (monotone here
        // because the tensor is fixed and partitions only get finer).
        assert!(
            out.comm.bytes >= last_bytes,
            "bytes fell: {} -> {} at workers={workers}",
            last_bytes,
            out.comm.bytes
        );
        last_bytes = out.comm.bytes;
        // Collectives per iteration: per mode one gram all-reduce (2
        // collectives as gather+broadcast) + 2 exchanges, + 1 loss scalar
        // all-reduce (2 collectives) per iteration — just sanity-bound it.
        let per_iter = out.comm.collectives / out.iterations as u64;
        assert!(per_iter >= 3, "suspiciously few collectives: {per_iter}");
        assert!(per_iter <= 40, "collective storm: {per_iter}");
    }
}

#[test]
fn convergence_decision_is_consistent_distributed() {
    // With a generous tolerance both serial and distributed must stop at
    // the same iteration (they evaluate the same replicated loss).
    let old_shape = [6usize, 6, 6];
    let old = random_factors(&old_shape, 3, 8);
    let x = random_complement(&old_shape, &[9, 9, 9], 200, 9);
    let cfg = DecompConfig::default()
        .with_rank(3)
        .with_max_iters(30)
        .with_tolerance(1e-3);
    let serial = dtd(&x, &old, &cfg).expect("serial");
    let dist = dismastd(&x, &old, &cfg, &ClusterConfig::new(3)).expect("dist");
    assert_eq!(serial.iterations, dist.iterations);
    assert!(
        serial.iterations < 30,
        "tolerance should trigger early stop"
    );
}

#[test]
fn setup_bytes_match_theorem4_shape() {
    // Theorem 4: O(nnz + M N R² + N I R + N d R).  Check the dominant nnz
    // term: doubling the nonzeros roughly doubles setup bytes.
    let cfg = DecompConfig::default().with_rank(4).with_max_iters(2);
    let small = random_tensor(&[30, 30, 30], 1000, 10);
    let large = random_tensor(&[30, 30, 30], 2000, 11);
    let a = dms_mg(&small, &cfg, &ClusterConfig::new(4)).expect("runs");
    let b = dms_mg(&large, &cfg, &ClusterConfig::new(4)).expect("runs");
    let ratio = b.setup_bytes as f64 / a.setup_bytes as f64;
    assert!(
        (1.2..3.0).contains(&ratio),
        "setup bytes ratio {ratio} out of range ({} vs {})",
        a.setup_bytes,
        b.setup_bytes
    );
}

//! Numerical-robustness suite: adversarial streams against the conditioned
//! solver ladder, the divergence watchdog, and validated ingest.
//!
//! Acceptance properties:
//!
//! 1. degenerate inputs (collinear factors, rank-deficient Grams, empty
//!    complements) decompose without panics or non-finite output, with the
//!    fired solver tiers visible in the step/decomposition reports;
//! 2. invalid data (NaN nonzeros) is rejected with a typed error naming the
//!    coordinate under `Strict` validation and dropped-and-counted under
//!    `Quarantine`, where the stream still converges;
//! 3. the distributed engine makes every solver decision once (rank 0) and
//!    broadcasts it, so when regularization fires the factors match the
//!    serial trajectory and repeated runs are bit-identical.

use dismastd_core::{
    dismastd, dtd, ClusterConfig, DecompConfig, ExecutionMode, NumericsPolicy, SolvePolicy,
    StreamingSession, ValidationMode, WatchdogPolicy,
};
use dismastd_tensor::{Matrix, SparseTensor, SparseTensorBuilder, TensorError};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn cfg() -> DecompConfig {
    DecompConfig::default().with_rank(3).with_max_iters(5)
}

fn random_complement(
    old_shape: &[usize],
    new_shape: &[usize],
    nnz: usize,
    seed: u64,
) -> SparseTensor {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = SparseTensorBuilder::new(new_shape.to_vec());
    let mut placed = 0;
    while placed < nnz {
        let idx: Vec<usize> = new_shape.iter().map(|&s| rng.gen_range(0..s)).collect();
        if SparseTensor::block_of(&idx, old_shape) == 0 {
            continue;
        }
        b.push(&idx, rng.gen_range(-1.0..1.0)).unwrap();
        placed += 1;
    }
    b.build().unwrap()
}

fn random_snapshot(shape: &[usize], nnz: usize, seed: u64) -> SparseTensor {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = SparseTensorBuilder::new(shape.to_vec());
    for _ in 0..nnz {
        let idx: Vec<usize> = shape.iter().map(|&s| rng.gen_range(0..s)).collect();
        b.push(&idx, rng.gen_range(0.5..1.5)).unwrap();
    }
    b.build().unwrap()
}

fn assert_all_finite(factors: &[Matrix]) {
    for f in factors {
        assert!(
            f.as_slice().iter().all(|v| v.is_finite()),
            "non-finite factor entries"
        );
    }
}

// ---- degraded-mode solves ------------------------------------------------

#[test]
fn collinear_old_factors_escalate_and_stay_finite() {
    // Mode 1 does not grow, so its Gram is built from the old rows alone —
    // and those are collinear (identical columns), making the Gram rank 1
    // and the mode-0 denominators singular.  The solver ladder must carry
    // the decomposition to a finite answer under the *default* policy.
    let mut collinear = Matrix::zeros(3, 3);
    for i in 0..3 {
        let v = 1.0 + 0.25 * i as f64;
        for c in 0..3 {
            collinear.row_mut(i)[c] = v;
        }
    }
    let old = vec![
        {
            let mut rng = ChaCha8Rng::seed_from_u64(2);
            Matrix::random(4, 3, &mut rng)
        },
        collinear,
    ];
    // Complement: new rows in mode 0 only (mode 1 keeps its 3 rows).
    let mut b = SparseTensorBuilder::new(vec![6, 3]);
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    for i0 in 4..6 {
        for i1 in 0..3 {
            b.push(&[i0, i1], rng.gen_range(-1.0..1.0)).unwrap();
        }
    }
    let x = b.build().unwrap();

    let out = dtd(&x, &old, &cfg()).unwrap();
    assert!(out.numerics.escalated(), "{:?}", out.numerics);
    assert_all_finite(out.kruskal.factors());
    assert!(out.loss_trace.iter().all(|l| l.is_finite()));
}

#[test]
fn empty_slice_snapshot_is_harmless() {
    // The snapshot grows in every mode but brings zero new nonzeros, so the
    // new-row Gram blocks are all-zero — the ridge floor must handle the
    // resulting zero denominators without panicking.
    let s0 = random_snapshot(&[5, 5, 4], 60, 3);
    let mut sess = StreamingSession::new(cfg(), ExecutionMode::Serial);
    sess.ingest(&s0).unwrap();
    let grown = {
        let mut b = SparseTensorBuilder::new(vec![7, 7, 5]);
        for (idx, v) in s0.iter() {
            b.push(idx, v).unwrap();
        }
        b.build().unwrap()
    };
    let r = sess.ingest(&grown).unwrap();
    assert_eq!(r.processed_nnz, 0);
    assert!(r.loss.is_finite());
    assert_all_finite(sess.factors().unwrap().factors());
}

// ---- validated ingest ----------------------------------------------------

#[test]
fn strict_validation_names_the_offending_coordinate() {
    let mut b = SparseTensorBuilder::new(vec![4, 4, 4]);
    b.push(&[0, 0, 0], 1.0).unwrap();
    b.push(&[2, 3, 1], f64::NAN).unwrap();
    b.push(&[3, 3, 3], 2.0).unwrap();
    let dirty = b.build().unwrap();

    // Strict is the default policy.
    let mut sess = StreamingSession::new(cfg(), ExecutionMode::Serial);
    match sess.ingest(&dirty) {
        Err(TensorError::NonFiniteValue { index, value }) => {
            assert_eq!(index, vec![2, 3, 1]);
            assert!(value.is_nan());
        }
        other => panic!("expected NonFiniteValue, got {other:?}"),
    }
    // The failed ingest left the session untouched and usable.
    assert_eq!(sess.steps(), 0);
    let clean = random_snapshot(&[4, 4, 4], 30, 4);
    assert!(sess.ingest(&clean).is_ok());
}

#[test]
fn quarantine_validation_drops_counts_and_converges() {
    let shape = [6usize, 6, 5];
    let mut b = SparseTensorBuilder::new(shape.to_vec());
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    for _ in 0..80 {
        let idx: Vec<usize> = shape.iter().map(|&s| rng.gen_range(0..s)).collect();
        b.push(&idx, rng.gen_range(0.5..1.5)).unwrap();
    }
    b.push(&[0, 1, 2], f64::NAN).unwrap();
    b.push(&[1, 2, 3], f64::INFINITY).unwrap();
    let dirty = b.build().unwrap();

    let cfg = cfg().with_validation(ValidationMode::Quarantine);
    let mut sess = StreamingSession::new(cfg, ExecutionMode::Serial);
    let r = sess.ingest(&dirty).unwrap();
    assert_eq!(r.quarantined, 2);
    assert!(r.loss.is_finite());
    assert!(r.fit.is_finite());
    assert_all_finite(sess.factors().unwrap().factors());

    // A dirty *warm* step quarantines too, and the stream keeps going.
    let mut b = SparseTensorBuilder::new(vec![8, 8, 6]);
    for (idx, v) in dirty.iter() {
        b.push(idx, v).unwrap();
    }
    b.push(&[7, 7, 5], f64::NAN).unwrap();
    b.push(&[6, 7, 5], 1.0).unwrap();
    let dirty2 = b.build().unwrap();
    let r2 = sess.ingest(&dirty2).unwrap();
    assert_eq!(r2.quarantined, 3); // the two old NaN/Inf entries + the new one
    assert!(r2.loss.is_finite());
    assert_all_finite(sess.factors().unwrap().factors());
}

#[test]
fn quarantine_works_distributed_too() {
    let mut b = SparseTensorBuilder::new(vec![6, 6, 5]);
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    for _ in 0..70 {
        let idx: Vec<usize> = [6usize, 6, 5]
            .iter()
            .map(|&s| rng.gen_range(0..s))
            .collect();
        b.push(&idx, rng.gen_range(0.5..1.5)).unwrap();
    }
    b.push(&[5, 5, 4], f64::NAN).unwrap();
    let dirty = b.build().unwrap();

    let cfg = cfg().with_validation(ValidationMode::Quarantine);
    let mut sess = StreamingSession::new(cfg, ExecutionMode::Distributed(ClusterConfig::new(3)));
    let r = sess.ingest(&dirty).unwrap();
    assert_eq!(r.quarantined, 1);
    assert!(r.loss.is_finite());
    assert!(r.comm.is_some());
}

// ---- divergence watchdog -------------------------------------------------

#[test]
fn watchdog_reports_divergence_and_leaves_session_usable() {
    // Validation off lets the NaN reach the solver; every attempt fails
    // numerically (the conditioned solver refuses to emit non-finite
    // factors), so the watchdog exhausts its restart budget and surfaces a
    // typed Diverged error without corrupting the session.
    let mut b = SparseTensorBuilder::new(vec![4, 4, 4]);
    b.push(&[0, 0, 0], 1.0).unwrap();
    b.push(&[1, 1, 1], f64::NAN).unwrap();
    b.push(&[2, 2, 2], 2.0).unwrap();
    let dirty = b.build().unwrap();

    let wd = WatchdogPolicy::default();
    let cfg = cfg().with_validation(ValidationMode::Off);
    let mut sess = StreamingSession::new(cfg, ExecutionMode::Serial);
    match sess.ingest(&dirty) {
        Err(TensorError::Diverged { restarts, detail }) => {
            assert_eq!(restarts, wd.max_restarts);
            assert!(!detail.is_empty(), "detail should explain the failure");
        }
        other => panic!("expected Diverged, got {other:?}"),
    }
    // Durable state untouched; a clean snapshot then ingests normally.
    assert_eq!(sess.steps(), 0);
    assert!(sess.factors().is_none());
    let clean = random_snapshot(&[4, 4, 4], 25, 7);
    let r = sess.ingest(&clean).unwrap();
    assert_eq!(r.watchdog_restarts, 0);
    assert!(r.loss.is_finite());
}

#[test]
fn watchdog_disabled_propagates_solver_errors_without_retrying() {
    // With the watchdog off the numeric failure surfaces directly (no
    // Diverged wrapper, no retries) — the caller opted out of supervision.
    let mut b = SparseTensorBuilder::new(vec![4, 4]);
    b.push(&[0, 0], f64::NAN).unwrap();
    b.push(&[3, 3], 1.0).unwrap();
    let dirty = b.build().unwrap();

    let numerics = NumericsPolicy::default()
        .with_validation(ValidationMode::Off)
        .with_watchdog(WatchdogPolicy {
            enabled: false,
            ..WatchdogPolicy::default()
        });
    let cfg = DecompConfig::default()
        .with_rank(2)
        .with_max_iters(3)
        .with_numerics(numerics);
    let mut sess = StreamingSession::new(cfg, ExecutionMode::Serial);
    let err = sess.ingest(&dirty).unwrap_err();
    assert!(
        !matches!(err, TensorError::Diverged { .. }),
        "watchdog off must not wrap the error: {err:?}"
    );
    assert_eq!(sess.steps(), 0);
}

// ---- decision broadcast: serial/distributed consistency ------------------

/// Policy whose condition ceiling rejects everything, forcing the ridge
/// tier on every solve.
fn forced_ridge() -> NumericsPolicy {
    NumericsPolicy::default().with_solver(SolvePolicy {
        condition_limit: 1.0 + 1e-9,
        ..SolvePolicy::default()
    })
}

#[test]
fn forced_ridge_single_worker_matches_serial_bitwise() {
    let old_shape = [4usize, 4, 3];
    let old: Vec<Matrix> = {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        old_shape
            .iter()
            .map(|&s| Matrix::random(s, 3, &mut rng))
            .collect()
    };
    let x = random_complement(&old_shape, &[6, 6, 5], 50, 9);
    let cfg = cfg().with_numerics(forced_ridge());

    let serial = dtd(&x, &old, &cfg).unwrap();
    assert!(serial.numerics.ridge_solves > 0);
    assert_eq!(serial.numerics.cholesky_solves, 0);
    assert_eq!(serial.numerics.lu_solves, 0);

    let dist = dismastd(&x, &old, &cfg, &ClusterConfig::new(1)).unwrap();
    // Rank 0's broadcast decisions mirror the serial solver's exactly.
    assert_eq!(dist.numerics, serial.numerics);
    assert_eq!(dist.loss_trace, serial.loss_trace);
    for (a, b) in serial.kruskal.factors().iter().zip(dist.kruskal.factors()) {
        assert_eq!(a.max_abs_diff(b).unwrap(), 0.0, "factors diverged");
    }
}

#[test]
fn forced_ridge_multi_worker_applies_identical_decisions() {
    let old_shape = [4usize, 5, 3];
    let old: Vec<Matrix> = {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        old_shape
            .iter()
            .map(|&s| Matrix::random(s, 3, &mut rng))
            .collect()
    };
    let x = random_complement(&old_shape, &[8, 8, 6], 110, 11);
    let cfg = cfg().with_numerics(forced_ridge());

    let serial = dtd(&x, &old, &cfg).unwrap();
    assert!(serial.numerics.ridge_solves > 0);

    for workers in [2usize, 3, 4] {
        let dist = dismastd(&x, &old, &cfg, &ClusterConfig::new(workers)).unwrap();
        // Identical decision stream: same solves, same tiers, same λ/cond
        // extremes — the broadcast made regularization deterministic.
        assert_eq!(dist.numerics, serial.numerics, "workers={workers}");
        for (a, b) in serial.kruskal.factors().iter().zip(dist.kruskal.factors()) {
            assert!(
                a.max_abs_diff(b).unwrap() < 1e-6,
                "workers={workers}: factors drifted"
            );
        }
        assert_all_finite(dist.kruskal.factors());
    }
}

#[test]
fn forced_ridge_distributed_runs_are_reproducible() {
    let old_shape = [4usize, 4, 3];
    let old: Vec<Matrix> = {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        old_shape
            .iter()
            .map(|&s| Matrix::random(s, 3, &mut rng))
            .collect()
    };
    let x = random_complement(&old_shape, &[7, 7, 5], 80, 13);
    let cfg = cfg().with_numerics(forced_ridge());
    let cc = ClusterConfig::new(3);

    let a = dismastd(&x, &old, &cfg, &cc).unwrap();
    let b = dismastd(&x, &old, &cfg, &cc).unwrap();
    assert!(a.numerics.ridge_solves > 0);
    assert_eq!(a.numerics, b.numerics);
    assert_eq!(a.loss_trace, b.loss_trace);
    for (fa, fb) in a.kruskal.factors().iter().zip(b.kruskal.factors()) {
        assert_eq!(fa.max_abs_diff(fb).unwrap(), 0.0);
    }
}

#[test]
fn default_policy_session_reports_no_escalation_on_clean_data() {
    let s0 = random_snapshot(&[6, 6, 5], 70, 14);
    let mut sess = StreamingSession::new(cfg(), ExecutionMode::Serial);
    let r = sess.ingest(&s0).unwrap();
    assert!(r.numerics.cholesky_solves > 0);
    assert!(!r.numerics.escalated(), "{:?}", r.numerics);
    assert_eq!(r.quarantined, 0);
    assert_eq!(r.watchdog_restarts, 0);
}

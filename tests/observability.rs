//! Observability suite: the per-phase span registry and the metrics
//! snapshot surfaced on [`StepReport`].
//!
//! The accounting properties under test:
//!
//! 1. collection is opt-in — the default path reports no metrics;
//! 2. serial phase spans are non-overlapping on one thread, so their sum
//!    is bounded by the step's wall-clock;
//! 3. a distributed run's merged snapshot (driver + every rank) covers at
//!    least 90% of the step's wall-clock — the instrumentation does not
//!    lose whole phases;
//! 4. the `comm/msg_bytes` histogram reconciles *exactly* with the
//!    cluster's logical byte counter, faults or not;
//! 5. no recording is silently dropped: a collected run (including the
//!    pooled kernels' worker threads) reports `dropped_metrics == 0`.

use dismastd_cluster::{ClusterOptions, FaultPlan};
use dismastd_core::{
    ClusterConfig, DecompConfig, ExecutionMode, MetricsSnapshot, StepReport, StreamingSession,
    ThreadPolicy,
};
use dismastd_tensor::{SparseTensor, SparseTensorBuilder};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Every test in this binary runs sessions, and the dropped-metric tally
/// is process-global (it only counts while some collector is active).  A
/// test running a session *without* collection must therefore not overlap
/// a test asserting `dropped_metrics == 0` under collection — serialize
/// them all on one lock.
fn serial() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn snapshot_pair() -> (SparseTensor, SparseTensor) {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let full_shape = [14usize, 12, 10];
    let mut full = SparseTensorBuilder::new(full_shape.to_vec());
    for _ in 0..1200 {
        let idx: Vec<usize> = full_shape.iter().map(|&s| rng.gen_range(0..s)).collect();
        full.push(&idx, rng.gen_range(0.5..1.5)).unwrap();
    }
    let full = full.build().unwrap();
    let small = full.restrict(&[11, 10, 8]).unwrap();
    (small, full)
}

fn cfg() -> DecompConfig {
    DecompConfig::default().with_rank(4).with_max_iters(6)
}

/// Runs cold start + one incremental step, metrics on, and returns the
/// incremental report.
fn collected_step(mode: ExecutionMode) -> StepReport {
    let (s0, s1) = snapshot_pair();
    let mut sess = StreamingSession::new(cfg(), mode);
    sess.set_collect_metrics(true);
    sess.ingest(&s0).unwrap();
    sess.ingest(&s1).unwrap()
}

#[test]
fn metrics_are_opt_in() {
    let _serial = serial();
    let (s0, _) = snapshot_pair();
    let mut sess = StreamingSession::new(cfg(), ExecutionMode::Serial);
    let report = sess.ingest(&s0).unwrap();
    assert!(report.metrics.is_none(), "no collection was requested");

    // Toggling mid-session works and does not disturb earlier state.
    sess.set_collect_metrics(true);
    assert!(sess.collect_metrics());
}

#[test]
fn serial_phase_spans_sum_within_step_elapsed() {
    let _serial = serial();
    let report = collected_step(ExecutionMode::Serial);
    let m = report.metrics.as_ref().expect("metrics were collected");

    // Phase spans are non-overlapping on the single driver thread, so
    // their sum can never exceed the step's wall-clock envelope.
    let phase_ns = m.phase_total_ns();
    assert!(phase_ns > 0, "no phase time recorded:\n{}", m.to_text());
    assert!(
        phase_ns <= report.elapsed.as_nanos() as u64,
        "phase sum {phase_ns}ns exceeds elapsed {:?}",
        report.elapsed
    );

    // The solver's main phases all fired, once per iteration per mode.
    for phase in ["phase/mttkrp", "phase/solve", "phase/gram", "phase/loss"] {
        assert!(
            m.span_total_ns(phase) > 0,
            "{phase} missing:\n{}",
            m.to_text()
        );
    }

    // Every normal-equation solve escalated through a tier the counter saw.
    let solves =
        report.numerics.cholesky_solves + report.numerics.lu_solves + report.numerics.ridge_solves;
    assert_eq!(m.counter_value("solve/tier"), solves);
}

#[test]
fn distributed_metrics_cover_the_wall_clock() {
    let _serial = serial();
    let report = collected_step(ExecutionMode::Distributed(ClusterConfig::new(2)));
    let m = report.metrics.as_ref().expect("metrics were collected");

    // The merged snapshot holds the driver's prep spans plus *both* ranks'
    // solver spans; with two ranks running the full window concurrently,
    // losing a whole phase to missing instrumentation would show up as a
    // sum well below the wall-clock.
    let phase_ns = m.phase_total_ns() as f64;
    let elapsed_ns = report.elapsed.as_nanos() as f64;
    assert!(
        phase_ns >= 0.9 * elapsed_ns,
        "phase sum {:.3}ms < 90% of elapsed {:.3}ms:\n{}",
        phase_ns / 1e6,
        elapsed_ns / 1e6,
        m.to_text()
    );

    // Driver prep and worker phases both made it into the merge.
    for phase in [
        "phase/partition",
        "phase/plan_build",
        "phase/setup",
        "phase/mttkrp",
        "phase/exchange",
        "phase/solve",
        "phase/gram",
        "phase/loss",
        "phase/gather",
    ] {
        assert!(
            m.span_total_ns(phase) > 0,
            "{phase} missing:\n{}",
            m.to_text()
        );
    }
    // The overlapped collective layer splits each exchange into a post and
    // a wait half; the combined `comm/exchange` span only appears on the
    // non-overlapped path.
    for comm in [
        "comm/exchange_post",
        "comm/exchange_wait",
        "comm/broadcast",
        "comm/allreduce",
    ] {
        assert!(m.span_total_ns(comm) > 0, "{comm} missing");
    }

    // Every logical byte the cluster counted passed through the histogram
    // at the same call site, so the totals must agree exactly.
    let comm = report.comm.as_ref().expect("distributed step has comm");
    assert!(comm.reconciles());
    assert_eq!(comm.unattributed_bytes, 0);
    let hist = m.histogram("comm/msg_bytes").expect("msg_bytes histogram");
    assert_eq!(hist.total, comm.bytes);
    assert_eq!(hist.count, comm.messages);
}

#[test]
fn comm_accounting_reconciles_under_fault_injection() {
    let _serial = serial();
    let (s0, s1) = snapshot_pair();
    let mode = ExecutionMode::Distributed(ClusterConfig::new(3));

    // Fault-free reference with metrics on.
    let mut clean = StreamingSession::new(cfg(), mode.clone());
    clean.set_collect_metrics(true);
    clean.ingest(&s0).unwrap();
    let clean_report = clean.ingest(&s1).unwrap();

    // Same computation under masked faults: drops with retransmit plus
    // duplicate deliveries.
    let plan = Arc::new(
        FaultPlan::seeded(17)
            .with_message_drops(40)
            .with_duplicates(30)
            .with_retransmit_delay(Duration::from_micros(50)),
    );
    let mut chaos = StreamingSession::new(cfg(), mode);
    chaos.set_collect_metrics(true);
    chaos.ingest(&s0).unwrap();
    chaos.set_cluster_options(ClusterOptions::default().with_fault_plan(plan));
    let chaos_report = chaos.ingest(&s1).unwrap();

    for (name, report) in [("clean", &clean_report), ("chaos", &chaos_report)] {
        let comm = report.comm.as_ref().unwrap();
        assert!(comm.reconciles(), "{name}: per-sender breakdown drifted");
        assert_eq!(comm.unattributed_bytes, 0, "{name}");
        let m = report.metrics.as_ref().unwrap();
        let hist = m.histogram("comm/msg_bytes").unwrap();
        // Retransmits and duplicates are wire-level noise; the histogram
        // tracks logical sends, so it matches the logical totals exactly.
        assert_eq!(hist.total, comm.bytes, "{name}");
        assert_eq!(hist.count, comm.messages, "{name}");
    }
    assert!(chaos_report.comm.as_ref().unwrap().retransmits > 0);

    // Masked faults change neither the math nor the logical traffic.
    assert_eq!(
        clean_report.comm.as_ref().unwrap().bytes,
        chaos_report.comm.as_ref().unwrap().bytes
    );
    assert_eq!(clean_report.loss, chaos_report.loss);
}

#[test]
fn no_recording_is_dropped_under_collection() {
    let _serial = serial();
    // Multi-lane kernel pools: Fixed(4) over a 2-rank world gives every
    // rank a 2-lane pool, so pool worker threads really run chunks and
    // their child snapshots must be absorbed, not lost.  The stream is
    // denser than `snapshot_pair` so per-cell nnz clears the adaptive
    // selector's plan threshold — COO cells would never touch the pool.
    let mut rng = ChaCha8Rng::seed_from_u64(43);
    let full_shape = [30usize, 24, 20];
    let mut full = SparseTensorBuilder::new(full_shape.to_vec());
    for _ in 0..6000 {
        let idx: Vec<usize> = full_shape.iter().map(|&s| rng.gen_range(0..s)).collect();
        full.push(&idx, rng.gen_range(0.5..1.5)).unwrap();
    }
    let full = full.build().unwrap();
    let s0 = full.restrict(&[24, 20, 16]).unwrap();
    let s1 = full;
    let cluster = ClusterConfig::new(2);
    let mut sess = StreamingSession::new(
        cfg().with_threads(ThreadPolicy::Fixed(4)),
        ExecutionMode::Distributed(cluster),
    );
    sess.set_collect_metrics(true);
    sess.ingest(&s0).unwrap();
    let report = sess.ingest(&s1).unwrap();
    let m = report.metrics.as_ref().expect("metrics were collected");
    assert_eq!(
        m.dropped_metrics,
        0,
        "recordings leaked to threads with no registry:\n{}",
        m.to_text()
    );
    // The selector actually picked sorted-run plans somewhere, and their
    // pooled kernels accounted every chunk.
    assert!(
        m.counter_value("plan/adaptive_plan") > 0,
        "\n{}",
        m.to_text()
    );
    assert!(m.counter_value("pool/chunks") > 0, "\n{}", m.to_text());
    // Merging never sums the dropped tallies (windows overlap), so a
    // merged clean run still reports zero.
    let mut acc = MetricsSnapshot::default();
    acc.merge(m);
    assert_eq!(acc.dropped_metrics, 0);
}

#[test]
fn snapshot_merge_and_exporters_round_trip() {
    let _serial = serial();
    let report = collected_step(ExecutionMode::Distributed(ClusterConfig::new(2)));
    let m = report.metrics.unwrap();
    assert!(!m.is_empty());

    // Merging a snapshot into a default one reproduces it.
    let mut acc = MetricsSnapshot::default();
    acc.merge(&m);
    assert_eq!(acc, m);

    // Text export names every phase; JSON export parses back.
    let text = m.to_text();
    assert!(text.contains("phase/mttkrp"));
    let json = m.to_json().unwrap();
    let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(back, m);
}

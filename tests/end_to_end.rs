//! End-to-end pipeline: dataset profile → streaming sequence → DisMASTD →
//! decomposition quality, exercising every crate together.

use dismastd_core::{DecompConfig, ExecutionMode, StreamingSession};
use dismastd_data::{DatasetSpec, StreamSequence};
use dismastd_integration_tests::random_tensor;
use dismastd_tensor::{KruskalTensor, Matrix, SparseTensorBuilder};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn paper_pipeline_on_scaled_netflix() {
    // Generate the Netflix-like profile, stream it 75% → 100%, and check
    // the session's invariants at each step.
    let full = DatasetSpec::netflix(0.08).generate().expect("generates");
    let seq =
        StreamSequence::cut(&full, &StreamSequence::paper_fractions()).expect("valid schedule");
    let cfg = DecompConfig::default().with_rank(5).with_max_iters(8);
    let mut session = StreamingSession::new(cfg, ExecutionMode::Serial);

    let mut prev_nnz = 0usize;
    for (t, snap) in seq.iter().enumerate() {
        let report = session.ingest(snap).expect("nested snapshots");
        assert_eq!(report.step, t);
        assert_eq!(report.cold_start, t == 0);
        assert!(report.loss.is_finite());
        assert!(report.fit.is_finite());
        if t > 0 {
            // DTD touches only the complement.
            assert_eq!(report.processed_nnz, snap.nnz() - prev_nnz);
        }
        prev_nnz = snap.nnz();
    }
    assert_eq!(session.steps(), 6);
    assert_eq!(session.shape(), full.shape());
}

#[test]
fn streaming_tracks_an_evolving_low_rank_signal() {
    // Ground truth: a rank-3 tensor over the final shape.  Each snapshot
    // reveals the sub-box.  After streaming, the fit on the full tensor must
    // be close to what a from-scratch ALS achieves.
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let shape = [24usize, 20, 16];
    let truth = KruskalTensor::new(
        shape
            .iter()
            .map(|&s| Matrix::random(s, 3, &mut rng))
            .collect(),
    )
    .expect("equal ranks");
    let dense = truth.to_dense().expect("small tensor");
    let mut b = SparseTensorBuilder::new(shape.to_vec());
    for (idx, v) in dense.iter_all() {
        b.push(&idx, v).expect("in bounds");
    }
    let full = b.build().expect("valid");

    let cfg = DecompConfig::default()
        .with_rank(3)
        .with_max_iters(40)
        .with_forgetting(1.0);
    let mut session = StreamingSession::new(cfg, ExecutionMode::Serial);
    let mut final_fit = 0.0;
    for f in [0.6f64, 0.8, 1.0] {
        let bounds: Vec<usize> = shape
            .iter()
            .map(|&s| ((s as f64 * f).ceil() as usize).min(s))
            .collect();
        let snap = full.restrict(&bounds).expect("bounds fit");
        final_fit = session.ingest(&snap).expect("nested").fit;
    }

    let scratch = dismastd_core::als::cp_als(&full, &cfg).expect("als runs");
    let scratch_fit = scratch.kruskal.fit(&full).expect("non-zero tensor");
    assert!(
        final_fit > scratch_fit - 0.1,
        "streaming fit {final_fit} far below from-scratch fit {scratch_fit}"
    );
    assert!(
        final_fit > 0.8,
        "low-rank signal should be fit well: {final_fit}"
    );
}

#[test]
fn io_round_trip_through_decomposition() {
    // Write a tensor to the COO text format, read it back, decompose both,
    // and verify identical results (exercises data::io + core determinism).
    let t = random_tensor(&[12, 10, 8], 200, 7);
    let mut buf = Vec::new();
    dismastd_data::io::write_coo_text(&t, &mut buf).expect("writes");
    let back = dismastd_data::io::read_coo_text(buf.as_slice()).expect("reads");
    assert_eq!(back, t);

    let cfg = DecompConfig::default().with_rank(3).with_max_iters(5);
    let a = dismastd_core::als::cp_als(&t, &cfg).expect("als");
    let b = dismastd_core::als::cp_als(&back, &cfg).expect("als");
    assert_eq!(a.loss_trace, b.loss_trace);
}

#[test]
fn all_dataset_profiles_stream_cleanly() {
    for spec in DatasetSpec::all(0.05) {
        let full = spec.generate().expect("generates");
        let seq = StreamSequence::cut(&full, &[0.8, 1.0]).expect("schedule");
        let cfg = DecompConfig::default().with_rank(4).with_max_iters(3);
        let mut session = StreamingSession::new(cfg, ExecutionMode::Serial);
        for snap in seq.iter() {
            let r = session.ingest(snap).expect("nested");
            assert!(r.loss.is_finite(), "{}", spec.name);
        }
    }
}

//! Chaos suite: deterministic fault injection against the cluster runtime
//! and the streaming session's checkpoint/recovery driver.
//!
//! The two acceptance properties from the fault-tolerance design:
//!
//! 1. a mid-step worker crash with recovery enabled replays the step and
//!    produces factors **bit-identical** to a fault-free run;
//! 2. the same crash without recovery surfaces a typed error promptly —
//!    no deadlock, no timeout-backstop wait.

use dismastd_cluster::{
    AllreduceAlgo, Cluster, ClusterError, ClusterOptions, CommPolicy, FaultPlan, Payload,
};
use dismastd_core::{ClusterConfig, DecompConfig, ExecutionMode, RecoveryPolicy, StreamingSession};
use dismastd_tensor::{SparseTensor, SparseTensorBuilder, TensorError};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn snapshot_pair() -> (SparseTensor, SparseTensor) {
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    let full_shape = [9usize, 8, 7];
    let mut full = SparseTensorBuilder::new(full_shape.to_vec());
    for _ in 0..200 {
        let idx: Vec<usize> = full_shape.iter().map(|&s| rng.gen_range(0..s)).collect();
        full.push(&idx, rng.gen_range(0.5..1.5)).unwrap();
    }
    let full = full.build().unwrap();
    let small = full.restrict(&[6, 6, 5]).unwrap();
    (small, full)
}

fn cfg() -> DecompConfig {
    DecompConfig::default().with_rank(3).with_max_iters(5)
}

// ---- runtime-level chaos -------------------------------------------------

#[test]
fn panicking_worker_aborts_the_run_promptly() {
    // Regression for the seed's deadlock-on-panic: peers used to block in
    // recv forever because every worker holds clones of all senders.
    let started = Instant::now();
    let err = Cluster::run(4, |ctx| {
        if ctx.rank() == 1 {
            panic!("chaos monkey");
        }
        // Everyone else enters a collective the dead worker never joins.
        let mut buf = vec![1.0f64; 64];
        ctx.allreduce_sum(&mut buf);
        buf[0]
    })
    .unwrap_err();
    match err {
        ClusterError::PeerCrashed { rank, cause } => {
            assert_eq!(rank, 1);
            assert!(cause.contains("chaos monkey"), "cause = {cause}");
        }
        other => panic!("expected PeerCrashed, got {other}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "abort must arrive long before the 30s timeout backstop; took {:?}",
        started.elapsed()
    );
}

#[test]
fn size_mismatch_is_observed_on_every_rank() {
    // The seed asserted buffer lengths on rank 0 only; the other ranks
    // hung.  Now the root aborts the collective and every rank gets the
    // same typed error naming the offending contributor.
    let out = Cluster::run(3, |ctx| {
        let len = if ctx.rank() == 1 { 5 } else { 4 };
        let mut buf = vec![ctx.rank() as f64; len];
        ctx.try_allreduce_sum(&mut buf).err()
    })
    .unwrap();
    assert_eq!(out.len(), 3);
    for (rank, err) in out.into_iter().enumerate() {
        match err {
            Some(ClusterError::SizeMismatch {
                rank: bad,
                expected,
                found,
            }) => {
                assert_eq!(bad, 1, "observer rank {rank} must blame rank 1");
                assert_eq!(expected, 4);
                assert_eq!(found, 5);
            }
            other => panic!("rank {rank}: expected SizeMismatch, got {other:?}"),
        }
    }
}

#[test]
fn injected_crash_surfaces_with_rank_and_cause() {
    let plan = Arc::new(FaultPlan::seeded(7).crash_worker_at_collective(2, 1));
    let opts = ClusterOptions::default()
        .with_timeout(Duration::from_secs(20))
        .with_fault_plan(Arc::clone(&plan));
    let started = Instant::now();
    let err = Cluster::try_run_with_opts(4, &opts, |ctx| {
        for _ in 0..4 {
            ctx.try_barrier()?;
        }
        Ok(ctx.rank())
    })
    .unwrap_err();
    match err {
        ClusterError::PeerCrashed { rank, cause } => {
            assert_eq!(rank, 2);
            assert!(cause.contains("fault injection"), "cause = {cause}");
        }
        other => panic!("expected PeerCrashed, got {other}"),
    }
    assert!(started.elapsed() < Duration::from_secs(10));
    assert_eq!(plan.remaining_crashes(), 0, "one-shot crash was consumed");
}

#[test]
fn message_faults_leave_logical_traffic_identical() {
    // Drops (with retransmit), duplicates (suppressed), and delays are all
    // masked faults: the computation and the *logical* CommStats totals
    // must match a fault-free run bit for bit, with the wire overhead
    // tallied separately.
    let workload = |ctx: &mut dismastd_cluster::WorkerCtx| {
        let me = ctx.rank() as f64;
        let world = ctx.world();
        let mut acc = 0.0;
        for round in 0..5 {
            let outgoing: Vec<Payload> = (0..world)
                .map(|d| Payload::F64(vec![me + round as f64; 32 + d]))
                .collect();
            let incoming = ctx.try_exchange(outgoing)?;
            for p in incoming {
                acc += p.try_into_f64()?.iter().sum::<f64>();
            }
            acc += ctx.try_allreduce_sum_scalar(me)?;
            // Mid-run, from every rank: the per-sender breakdown must
            // account for every logical byte even while faults fire.
            assert!(ctx.stats().reconciles());
        }
        Ok(acc)
    };

    let clean_opts = ClusterOptions::default();
    let (clean_results, clean_stats) =
        Cluster::try_run_with_opts(4, &clean_opts, workload).unwrap();

    let plan = Arc::new(
        FaultPlan::seeded(99)
            .with_message_drops(120)
            .with_duplicates(80)
            .with_delays(100, Duration::from_micros(200))
            .with_retransmit_delay(Duration::from_micros(100)),
    );
    let chaos_opts = ClusterOptions::default().with_fault_plan(plan);
    let (chaos_results, chaos_stats) =
        Cluster::try_run_with_opts(4, &chaos_opts, workload).unwrap();

    assert_eq!(
        clean_results, chaos_results,
        "masked faults changed results"
    );
    assert_eq!(clean_stats.bytes, chaos_stats.bytes);
    assert_eq!(clean_stats.messages, chaos_stats.messages);
    assert_eq!(clean_stats.collectives, chaos_stats.collectives);
    assert_eq!(clean_stats.bytes_by_sender, chaos_stats.bytes_by_sender);
    // Per-sender attribution accounts for every logical byte, faults or
    // not, and nothing fell into the out-of-range bucket.
    assert!(clean_stats.reconciles());
    assert!(chaos_stats.reconciles());
    assert_eq!(clean_stats.unattributed_bytes, 0);
    assert_eq!(chaos_stats.unattributed_bytes, 0);
    // The chaos run really did inject something.
    assert!(
        chaos_stats.retransmits > 0,
        "fault plan should have dropped or duplicated messages"
    );
    assert!(chaos_stats.duplicates_suppressed > 0);
    assert_eq!(clean_stats.retransmits, 0);
    assert_eq!(clean_stats.duplicates_suppressed, 0);
}

#[test]
fn fault_schedule_is_reproducible() {
    // Two runs under the same seed inject the same faults: identical
    // retransmit/duplicate counters, not just identical results.
    let run = || {
        let plan = Arc::new(
            FaultPlan::seeded(5)
                .with_message_drops(150)
                .with_duplicates(100),
        );
        let opts = ClusterOptions::default().with_fault_plan(plan);
        Cluster::try_run_with_opts(3, &opts, |ctx| {
            let mut buf = vec![ctx.rank() as f64; 50];
            for _ in 0..6 {
                ctx.try_allreduce_sum(&mut buf)?;
            }
            Ok(buf[0])
        })
        .unwrap()
    };
    let (r1, s1) = run();
    let (r2, s2) = run();
    assert_eq!(r1, r2);
    assert_eq!(s1, s2);
    assert!(s1.retransmits > 0);
}

// ---- session-level recovery ----------------------------------------------

/// A fault plan that kills worker 1 early in a distributed step.  The
/// collective index lands in the initial Gram rebuild, so the crash hits
/// mid-decomposition, after real work has started.
fn mid_step_crash(times: u32) -> Arc<FaultPlan> {
    Arc::new(FaultPlan::seeded(11).crash_worker_at_collective_times(1, 4, times))
}

#[test]
fn chaos_recovery_reproduces_fault_free_factors_bit_identically() {
    let (s0, s1) = snapshot_pair();
    let mode = ExecutionMode::Distributed(ClusterConfig::new(3));

    // Fault-free reference run.
    let mut clean = StreamingSession::new(cfg(), mode.clone());
    clean.ingest(&s0).unwrap();
    clean.ingest(&s1).unwrap();

    // Chaos run: crash worker 1 mid-way through the second step, recover.
    let plan = mid_step_crash(1);
    let mut chaos = StreamingSession::new(cfg(), mode);
    chaos.ingest(&s0).unwrap();
    chaos.set_cluster_options(ClusterOptions::default().with_fault_plan(Arc::clone(&plan)));
    let report = chaos
        .ingest_with_recovery(&s1, &RecoveryPolicy::default())
        .unwrap();

    assert_eq!(report.retries, 1, "exactly one replay after the crash");
    assert_eq!(plan.remaining_crashes(), 0);
    let clean_factors = clean.factors().unwrap().factors();
    let chaos_factors = chaos.factors().unwrap().factors();
    for (a, b) in clean_factors.iter().zip(chaos_factors) {
        assert_eq!(
            a.max_abs_diff(b).unwrap(),
            0.0,
            "recovered factors must be bit-identical to the fault-free run"
        );
    }
}

#[test]
fn crash_without_recovery_fails_promptly_with_typed_error() {
    let (s0, s1) = snapshot_pair();
    let mut sess = StreamingSession::new(cfg(), ExecutionMode::Distributed(ClusterConfig::new(3)));
    sess.ingest(&s0).unwrap();
    let steps_before = sess.steps();
    sess.set_cluster_options(ClusterOptions::default().with_fault_plan(mid_step_crash(1)));

    let started = Instant::now();
    let err = sess.ingest(&s1).unwrap_err();
    match &err {
        TensorError::ClusterFault { rank, detail } => {
            assert_eq!(*rank, Some(1), "fault attributed to the crashed rank");
            assert!(detail.contains("worker 1 crashed"), "detail = {detail}");
            assert!(detail.contains("fault injection"), "detail = {detail}");
        }
        other => panic!("expected ClusterFault, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(15),
        "abort fan-out must beat the 30s receive deadline; took {:?}",
        started.elapsed()
    );
    // The failed step committed nothing.
    assert_eq!(sess.steps(), steps_before);
    assert_eq!(sess.shape(), s0.shape());
}

#[test]
fn recovery_gives_up_once_the_retry_budget_is_exhausted() {
    let (s0, s1) = snapshot_pair();
    let mut sess = StreamingSession::new(cfg(), ExecutionMode::Distributed(ClusterConfig::new(3)));
    sess.ingest(&s0).unwrap();
    // Crash fires on the first attempt AND both replays.
    sess.set_cluster_options(ClusterOptions::default().with_fault_plan(mid_step_crash(3)));

    let policy = RecoveryPolicy::default().with_max_retries(2);
    let err = sess.ingest_with_recovery(&s1, &policy).unwrap_err();
    match err {
        TensorError::ClusterFault { detail, .. } => {
            assert!(detail.contains("retry budget"), "detail = {detail}")
        }
        other => panic!("expected ClusterFault, got {other:?}"),
    }
    // A subsequent fault-free attempt still works on the rolled-back state.
    sess.set_cluster_options(ClusterOptions::default());
    let report = sess.ingest(&s1).unwrap();
    assert!(!report.cold_start);
}

// ---- collective-layer chaos ----------------------------------------------

#[test]
fn masked_chaos_with_ring_and_compression_matches_a_clean_flat_run() {
    // Three invariances at once: masked faults (drops/dups/delays), the
    // ring allreduce, and the compression path with downcast off must all
    // leave the trajectory bit-identical to a clean flat-policy run.
    let (s0, s1) = snapshot_pair();
    let flat_mode = ExecutionMode::Distributed(ClusterConfig::new(3).with_comm(CommPolicy::flat()));
    let ring_mode = ExecutionMode::Distributed(
        ClusterConfig::new(3).with_comm(CommPolicy::default().with_allreduce(AllreduceAlgo::Ring)),
    );

    let mut clean = StreamingSession::new(cfg(), flat_mode);
    clean.ingest(&s0).unwrap();
    clean.ingest(&s1).unwrap();

    let plan = Arc::new(
        FaultPlan::seeded(42)
            .with_message_drops(120)
            .with_duplicates(80)
            .with_delays(100, Duration::from_micros(200))
            .with_retransmit_delay(Duration::from_micros(100)),
    );
    let mut chaos = StreamingSession::new(cfg(), ring_mode);
    chaos.set_cluster_options(ClusterOptions::default().with_fault_plan(plan));
    chaos.ingest(&s0).unwrap();
    let report = chaos.ingest(&s1).unwrap();

    for (a, b) in clean
        .factors()
        .unwrap()
        .factors()
        .iter()
        .zip(chaos.factors().unwrap().factors())
    {
        assert_eq!(
            a.max_abs_diff(b).unwrap(),
            0.0,
            "ring + compression + masked chaos must not move a bit"
        );
    }
    let comm = report.comm.expect("distributed step reports comm");
    assert!(comm.reconciles());
    assert!(comm.retransmits > 0, "the chaos plan really fired");
    // Downcast is off, so no frame beat the flat payload: wire == logical.
    assert_eq!(comm.compressed_bytes, 0);
    assert_eq!(comm.wire_bytes(), comm.bytes);
}

#[test]
fn crash_recovery_under_ring_policy_stays_bit_identical() {
    // A worker crash while a posted (overlapped) exchange is still in
    // flight: the abort must fan out, recovery must replay, and the result
    // must match the clean run under the same policy bit for bit.
    let (s0, s1) = snapshot_pair();
    let ring_mode = ExecutionMode::Distributed(
        ClusterConfig::new(3).with_comm(CommPolicy::default().with_allreduce(AllreduceAlgo::Ring)),
    );

    let mut clean = StreamingSession::new(cfg(), ring_mode.clone());
    clean.ingest(&s0).unwrap();
    clean.ingest(&s1).unwrap();

    // The ring collapses each allreduce to one sequence number (flat takes
    // two), so the crash index differs from `mid_step_crash`: seq 5 lands
    // inside the first iteration's solve/exchange window, after the mode-0
    // partial exchange has been posted.
    let plan = Arc::new(FaultPlan::seeded(11).crash_worker_at_collective_times(1, 5, 1));
    let mut chaos = StreamingSession::new(cfg(), ring_mode);
    chaos.ingest(&s0).unwrap();
    chaos.set_cluster_options(ClusterOptions::default().with_fault_plan(Arc::clone(&plan)));
    let report = chaos
        .ingest_with_recovery(&s1, &RecoveryPolicy::default())
        .unwrap();

    assert_eq!(report.retries, 1, "exactly one replay after the crash");
    assert_eq!(plan.remaining_crashes(), 0);
    for (a, b) in clean
        .factors()
        .unwrap()
        .factors()
        .iter()
        .zip(chaos.factors().unwrap().factors())
    {
        assert_eq!(a.max_abs_diff(b).unwrap(), 0.0);
    }
}

#[test]
fn masked_chaos_does_not_perturb_the_lossy_downcast_path() {
    // Even the lossy f32 path must be deterministic: masked faults change
    // the wire schedule but never which bits arrive.
    let (s0, s1) = snapshot_pair();
    let mode = ExecutionMode::Distributed(
        ClusterConfig::new(3).with_comm(CommPolicy::default().with_downcast_f32(true)),
    );

    let mut clean = StreamingSession::new(cfg(), mode.clone());
    clean.ingest(&s0).unwrap();
    clean.ingest(&s1).unwrap();

    let plan = Arc::new(
        FaultPlan::seeded(17)
            .with_message_drops(150)
            .with_duplicates(90),
    );
    let mut chaos = StreamingSession::new(cfg(), mode);
    chaos.set_cluster_options(ClusterOptions::default().with_fault_plan(plan));
    chaos.ingest(&s0).unwrap();
    chaos.ingest(&s1).unwrap();

    for (a, b) in clean
        .factors()
        .unwrap()
        .factors()
        .iter()
        .zip(chaos.factors().unwrap().factors())
    {
        assert_eq!(a.max_abs_diff(b).unwrap(), 0.0);
    }
    let (c, f) = (clean.comm_totals(), chaos.comm_totals());
    assert!(c.compressed_bytes > 0, "downcast produced frames");
    assert_eq!(c.bytes, f.bytes);
    assert_eq!(c.compressed_bytes, f.compressed_bytes);
    assert_eq!(c.downcast_rows, f.downcast_rows);
    assert!(f.reconciles());
    assert!(f.retransmits > 0, "the chaos plan really fired");
}

#[test]
fn checkpoint_round_trips_compression_counters() {
    let (s0, s1) = snapshot_pair();
    let mode = ExecutionMode::Distributed(
        ClusterConfig::new(3).with_comm(CommPolicy::default().with_downcast_f32(true)),
    );
    let mut sess = StreamingSession::new(cfg(), mode);
    sess.ingest(&s0).unwrap();
    sess.ingest(&s1).unwrap();
    let totals = sess.comm_totals();
    assert!(totals.compressed_bytes > 0);
    assert!(totals.downcast_rows > 0);
    assert!(totals.wire_bytes() < totals.bytes);
    assert!(totals.reconciles());

    let path = std::env::temp_dir().join("dismastd_collectives_ckpt.json");
    sess.checkpoint(&path).unwrap();
    let restored = StreamingSession::restore(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(restored.comm_totals(), totals);
    match restored.mode() {
        ExecutionMode::Distributed(cc) => assert!(cc.comm.downcast_f32),
        other => panic!("expected distributed mode, got {other:?}"),
    }
}

#[test]
fn frame_corruption_surfaces_as_a_typed_error_not_silent_damage() {
    // Corruption targets the opaque byte frames (the compressed exchanges);
    // the self-describing index block means a tampered frame is rejected
    // with a typed error — never decoded into wrong values.
    let (s0, s1) = snapshot_pair();
    let mode = ExecutionMode::Distributed(
        ClusterConfig::new(3).with_comm(CommPolicy::default().with_downcast_f32(true)),
    );
    let mut sess = StreamingSession::new(cfg(), mode);
    sess.ingest(&s0).unwrap();
    let steps_before = sess.steps();
    sess.set_cluster_options(
        ClusterOptions::default()
            .with_fault_plan(Arc::new(FaultPlan::seeded(23).with_corruption(500))),
    );

    let started = Instant::now();
    let err = sess.ingest(&s1).unwrap_err();
    assert!(matches!(err, TensorError::ClusterFault { .. }), "{err:?}");
    assert!(
        started.elapsed() < Duration::from_secs(15),
        "corruption abort must beat the receive deadline; took {:?}",
        started.elapsed()
    );
    // The poisoned step committed nothing.
    assert_eq!(sess.steps(), steps_before);
}

#[test]
fn on_disk_checkpoint_survives_a_simulated_process_death() {
    let (s0, s1) = snapshot_pair();
    let path = std::env::temp_dir().join("dismastd_chaos_ckpt.json");
    let policy = RecoveryPolicy::default().with_checkpoint_path(&path);
    let mode = ExecutionMode::Distributed(ClusterConfig::new(2));

    // Fault-free reference.
    let mut clean = StreamingSession::new(cfg(), mode.clone());
    clean.ingest(&s0).unwrap();
    clean.ingest(&s1).unwrap();

    // The "dying" process: checkpoint before the step, then fail it with a
    // crash schedule that outlives the in-process retry budget.
    let mut doomed = StreamingSession::new(cfg(), mode);
    doomed.ingest_with_recovery(&s0, &policy).unwrap();
    doomed.set_cluster_options(ClusterOptions::default().with_fault_plan(mid_step_crash(5)));
    let err = doomed
        .ingest_with_recovery(&s1, &policy.clone().with_max_retries(1))
        .unwrap_err();
    assert!(matches!(err, TensorError::ClusterFault { .. }));
    drop(doomed); // process death

    // A fresh process restores the pre-step checkpoint and replays.
    let mut revived = StreamingSession::restore(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(revived.steps(), 1);
    revived.ingest(&s1).unwrap();
    for (a, b) in clean
        .factors()
        .unwrap()
        .factors()
        .iter()
        .zip(revived.factors().unwrap().factors())
    {
        assert_eq!(a.max_abs_diff(b).unwrap(), 0.0);
    }
}

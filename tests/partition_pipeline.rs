//! Partitioning pipeline over realistic dataset profiles — the Table IV
//! phenomena as executable assertions.

use dismastd_data::DatasetSpec;
use dismastd_integration_tests::random_tensor;
use dismastd_partition::{gtp, mtp, optimal_arbitrary, BalanceStats, GridPartition, Partitioner};

#[test]
fn mtp_beats_gtp_on_every_skewed_profile() {
    // Table IV, rows Clothing/Book/Netflix: MTP's std-dev ≪ GTP's on
    // skewed data, for every partition count the paper sweeps.
    for spec in [
        DatasetSpec::clothing(0.08),
        DatasetSpec::book(0.08),
        DatasetSpec::netflix(0.08),
    ] {
        let t = spec.generate().expect("generates");
        let hist = t.slice_nnz(0).expect("mode 0");
        for p in [8usize, 15, 23, 30, 38] {
            let g = gtp(&hist, p).balance(&hist);
            let m = mtp(&hist, p).balance(&hist);
            assert!(
                m.std_dev <= g.std_dev,
                "{} p={p}: MTP {} vs GTP {}",
                spec.name,
                m.std_dev,
                g.std_dev
            );
        }
        // And strictly better somewhere (the distribution is skewed).
        let g = gtp(&hist, 15).balance(&hist);
        let m = mtp(&hist, 15).balance(&hist);
        assert!(
            m.std_dev < 0.8 * g.std_dev,
            "{}: expected a clear gap, MTP {} vs GTP {}",
            spec.name,
            m.std_dev,
            g.std_dev
        );
    }
}

#[test]
fn gtp_and_mtp_are_close_on_uniform_profile() {
    // Table IV, Synthetic row: on uniform data both heuristics are nearly
    // identical and nearly perfect.
    // Enough slices per partition that slice granularity does not dominate
    // (the paper's Synthetic has 5×10⁴ slices for at most 38 partitions).
    let t = DatasetSpec::synthetic(0.5).generate().expect("generates");
    for mode in 0..3 {
        let hist = t.slice_nnz(mode).expect("valid mode");
        for p in [8usize, 15, 23] {
            let g = gtp(&hist, p).balance(&hist);
            let m = mtp(&hist, p).balance(&hist);
            // Slice granularity (≈75 slices over up to 23 partitions) bounds
            // how even any slice-level partition can be.
            assert!(
                g.cv < 0.12,
                "GTP CV {} too high on uniform data (p={p})",
                g.cv
            );
            assert!(
                m.cv < 0.12,
                "MTP CV {} too high on uniform data (p={p})",
                m.cv
            );
            // And the two heuristics are comparable (no Table-IV-style gap).
            assert!(
                m.cv <= g.cv + 0.02,
                "unexpected gap on uniform data: MTP {} vs GTP {}",
                m.cv,
                g.cv
            );
        }
    }
}

#[test]
fn heuristics_within_factor_two_of_optimal_on_small_inputs() {
    // Both heuristics have bounded gaps to the NP-hard optimum; verify the
    // classic 2x bound comfortably holds on random small instances.
    for seed in 0..5u64 {
        let t = random_tensor(&[16, 12, 10], 300 + seed as usize * 50, seed);
        let hist = t.slice_nnz(0).expect("mode 0");
        for p in [2usize, 3, 4] {
            let opt = optimal_arbitrary(&hist, p);
            let opt_max = opt.loads(&hist).into_iter().max().expect("non-empty");
            for (name, heur) in [("GTP", gtp(&hist, p)), ("MTP", mtp(&hist, p))] {
                let h_max = heur.loads(&hist).into_iter().max().expect("non-empty");
                assert!(
                    h_max <= 2 * opt_max.max(1),
                    "seed {seed} p={p} {name}: {h_max} vs optimal {opt_max}"
                );
            }
        }
    }
}

#[test]
fn grid_placement_covers_all_profiles() {
    for spec in DatasetSpec::all(0.05) {
        let t = spec.generate().expect("generates");
        for p in [Partitioner::Gtp, Partitioner::Mtp] {
            for workers in [2usize, 5] {
                let grid = GridPartition::build(&t, p, &vec![workers; t.order()], workers)
                    .expect("builds");
                let loads = grid.worker_loads(&t);
                assert_eq!(
                    loads.iter().sum::<u64>(),
                    t.nnz() as u64,
                    "{}: lost nonzeros",
                    spec.name
                );
                let stats = BalanceStats::from_loads(&loads);
                assert!(
                    stats.imbalance < 2.5,
                    "{} {p:?} workers={workers}: imbalance {}",
                    spec.name,
                    stats.imbalance
                );
            }
        }
    }
}

#[test]
fn mode_partition_grid_worker_consistency() {
    // worker_of must place a nonzero on a worker that can be derived from
    // the mode partitions: same cell ⇒ same worker.
    let t = DatasetSpec::netflix(0.05).generate().expect("generates");
    let grid = GridPartition::build(&t, Partitioner::Mtp, &[4, 4, 4], 4).expect("builds");
    for (idx, _) in t.iter().take(500) {
        let w = grid.worker_of(idx);
        assert!(w < 4);
        // Same cell coordinates → same worker (determinism check via a
        // second lookup).
        assert_eq!(grid.worker_of(idx), w);
    }
}

//! Pins the allocation-free steady state end-to-end (L8's runtime twin).
//!
//! The static audit (`cargo run -p dismastd-xtask -- analyze`, lint L8)
//! proves no allocating call is *reachable* from the steady-state
//! kernels; this test proves the dynamic side with a counting global
//! allocator: after a warm-up that fills the payload pools, a full
//! gram → all-reduce → row-exchange round performs **zero** allocations
//! on every rank.
//!
//! Runs only under `--features count-alloc`, which swaps in
//! [`dismastd_obs::alloc::CountingAlloc`]; the ordinary suite stays on
//! the system allocator.  Transport-internal channel nodes are exempted
//! at the send sites (see `WorkerCtx::deliver`) — the audit covers the
//! payload path, not the wire's bookkeeping.
#![cfg(feature = "count-alloc")]

use dismastd_cluster::{BufferPool, Cluster, ClusterError, Framed, Payload};
use dismastd_obs::alloc::{allocation_count, CountingAlloc};
use dismastd_tensor::Matrix;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const WORLD: usize = 2;
const ROWS: usize = 12;
const RANK: usize = 5;
const WARMUP_ROUNDS: usize = 4;
const MEASURED_ROUNDS: usize = 8;

/// One steady-state round: local gram into `gram_buf`, flat all-reduce,
/// then a framed all-to-all row exchange with pooled payload staging.
fn round(
    ctx: &mut dismastd_cluster::WorkerCtx,
    factor: &Matrix,
    gram_buf: &mut [f64],
    pool: &mut BufferPool,
    outgoing: &mut Vec<Framed>,
    incoming: &mut Vec<Payload>,
) -> Result<f64, ClusterError> {
    let me = ctx.rank();
    let world = ctx.world();

    // Gram: G = Aᵀ·A accumulated in place, no scratch.
    for c1 in 0..RANK {
        for c2 in 0..RANK {
            let mut acc = 0.0;
            for row in 0..ROWS {
                acc += factor.get(row, c1) * factor.get(row, c2);
            }
            gram_buf[c1 * RANK + c2] = acc;
        }
    }

    // All-reduce the gram (the flat algorithm — the gram path's default).
    ctx.try_allreduce_sum(gram_buf)?;

    // Row exchange: ship this rank's rows to every peer from pooled
    // staging, drain the peers' rows back into the pool.
    outgoing.clear();
    for d in 0..world {
        if d == me {
            outgoing.push(Framed::plain(Payload::Empty));
        } else {
            let mut stage = pool.take();
            for row in 0..ROWS {
                stage.extend_from_slice(factor.row(row));
            }
            outgoing.push(Framed::plain(Payload::F64(stage)));
        }
    }
    let pending = ctx.post_exchange_framed_drain(outgoing)?;
    ctx.complete_exchange_into(pending, incoming)?;

    let mut checksum = gram_buf.iter().sum::<f64>();
    for (d, payload) in incoming.drain(..).enumerate() {
        if d == me {
            continue;
        }
        let v = payload.try_into_f64()?;
        checksum += v.iter().sum::<f64>();
        pool.put(v);
    }
    Ok(checksum)
}

#[test]
fn gram_allreduce_exchange_round_is_allocation_free_after_warmup() {
    let results = Cluster::try_run(WORLD, |ctx| {
        let me = ctx.rank();
        let factor = Matrix::from_fn(ROWS, RANK, |i, j| {
            (me as f64 + 1.0) * (i as f64 + 0.25 * j as f64 + 1.0)
        });
        let mut gram_buf = vec![0.0f64; RANK * RANK];
        let mut pool = BufferPool::new(true);
        let mut outgoing: Vec<Framed> = Vec::with_capacity(WORLD);
        let mut incoming: Vec<Payload> = Vec::with_capacity(WORLD);

        // Warm-up: fills this rank's payload pool, the collectives'
        // internal staging pool, and the out-of-order receive buffer.
        let mut warm = 0.0;
        for _ in 0..WARMUP_ROUNDS {
            warm = round(
                ctx,
                &factor,
                &mut gram_buf,
                &mut pool,
                &mut outgoing,
                &mut incoming,
            )?;
        }

        let before = allocation_count();
        let mut measured = 0.0;
        for _ in 0..MEASURED_ROUNDS {
            measured = round(
                ctx,
                &factor,
                &mut gram_buf,
                &mut pool,
                &mut outgoing,
                &mut incoming,
            )?;
        }
        let delta = allocation_count() - before;

        // The rounds are deterministic, so warm and measured agree — a
        // sanity check that the pooled path computes the same values.
        assert_eq!(warm.to_bits(), measured.to_bits(), "rank {me} checksum");
        Ok(delta)
    })
    .expect("cluster run");

    for (rank, delta) in results.iter().enumerate() {
        assert_eq!(
            *delta, 0,
            "rank {rank}: {delta} allocation(s) in {MEASURED_ROUNDS} steady-state rounds"
        );
    }
}

//! Shared fixtures for the cross-crate integration tests.

use dismastd_tensor::{SparseTensor, SparseTensorBuilder};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Random sparse tensor with uniform indices and positive values.
pub fn random_tensor(shape: &[usize], nnz: usize, seed: u64) -> SparseTensor {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = SparseTensorBuilder::new(shape.to_vec());
    for _ in 0..nnz {
        let idx: Vec<usize> = shape.iter().map(|&s| rng.gen_range(0..s)).collect();
        b.push(&idx, rng.gen_range(0.5..1.5)).expect("in bounds");
    }
    b.build().expect("valid shape")
}

/// Random complement tensor: entries over `new_shape` that all lie outside
/// the `old_shape` box.
pub fn random_complement(
    old_shape: &[usize],
    new_shape: &[usize],
    nnz: usize,
    seed: u64,
) -> SparseTensor {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = SparseTensorBuilder::new(new_shape.to_vec());
    let mut placed = 0;
    while placed < nnz {
        let idx: Vec<usize> = new_shape.iter().map(|&s| rng.gen_range(0..s)).collect();
        if SparseTensor::block_of(&idx, old_shape) == 0 {
            continue;
        }
        b.push(&idx, rng.gen_range(-1.0..1.0)).expect("in bounds");
        placed += 1;
    }
    b.build().expect("valid shape")
}

/// Random factor matrices for a given shape and rank.
pub fn random_factors(shape: &[usize], rank: usize, seed: u64) -> Vec<dismastd_tensor::Matrix> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    shape
        .iter()
        .map(|&s| dismastd_tensor::Matrix::random(s, rank, &mut rng))
        .collect()
}

//! Placement must never change the mathematics: the distributed result is
//! determined by the algorithm, not by where cells land.  These tests pin
//! that invariant across placement strategies, partitioners, and worker
//! counts, plus higher-order and stress configurations.

use dismastd_core::distributed::dismastd;
use dismastd_core::{dtd, ClusterConfig, DecompConfig, ExecutionMode, StreamingSession};
use dismastd_integration_tests::{random_complement, random_factors, random_tensor};
use dismastd_partition::{CellAssignment, Partitioner};

#[test]
fn block_grid_and_scatter_agree_numerically() {
    let old_shape = [8usize, 7, 6];
    let old = random_factors(&old_shape, 3, 21);
    let x = random_complement(&old_shape, &[12, 11, 10], 250, 22);
    let cfg = DecompConfig::default().with_rank(3).with_max_iters(5);
    let serial = dtd(&x, &old, &cfg).expect("serial runs");
    for assignment in [CellAssignment::BlockGrid, CellAssignment::Scatter] {
        let out = dismastd(
            &x,
            &old,
            &cfg,
            &ClusterConfig::new(4).with_cell_assignment(assignment),
        )
        .expect("distributed runs");
        for (a, b) in serial.loss_trace.iter().zip(&out.loss_trace) {
            assert!(
                (a - b).abs() < 1e-6 * (1.0 + a.abs()),
                "{assignment:?}: {a} vs {b}"
            );
        }
    }
}

#[test]
fn block_grid_moves_fewer_bytes_than_scatter() {
    // The locality argument, end to end: same algorithm, same answers,
    // less traffic under the medium-grain block layout.
    let x = random_tensor(&[40, 40, 40], 5000, 23);
    let cfg = DecompConfig::default().with_rank(4).with_max_iters(3);
    let bytes_of = |assignment| {
        dismastd_core::dms_mg(
            &x,
            &cfg,
            &ClusterConfig::new(8).with_cell_assignment(assignment),
        )
        .expect("runs")
        .comm
        .bytes
    };
    let block = bytes_of(CellAssignment::BlockGrid);
    let scatter = bytes_of(CellAssignment::Scatter);
    assert!(
        block < scatter,
        "block grid {block} bytes should undercut scatter {scatter}"
    );
}

#[test]
fn per_sender_traffic_is_reported_and_bounded() {
    let x = random_tensor(&[30, 30, 30], 3000, 24);
    let cfg = DecompConfig::default().with_rank(3).with_max_iters(3);
    let out = dismastd_core::dms_mg(&x, &cfg, &ClusterConfig::new(4)).expect("runs");
    assert_eq!(out.comm.bytes_by_sender.len(), 4);
    assert_eq!(
        out.comm.bytes_by_sender.iter().sum::<u64>(),
        out.comm.bytes,
        "per-sender bytes must add up to the total"
    );
    // No single worker should carry essentially all traffic on uniform data.
    let imbalance = out.comm.sender_imbalance();
    assert!(
        imbalance < 3.0,
        "sender imbalance {imbalance} suspiciously high: {:?}",
        out.comm.bytes_by_sender
    );
}

#[test]
fn fifth_order_stream_serial_vs_distributed() {
    let old_shape = [3usize, 3, 3, 3, 3];
    let new_shape = [5usize, 4, 5, 4, 4];
    let old = random_factors(&old_shape, 2, 25);
    let x = random_complement(&old_shape, &new_shape, 120, 26);
    let cfg = DecompConfig::default().with_rank(2).with_max_iters(4);
    let serial = dtd(&x, &old, &cfg).expect("serial runs");
    let dist = dismastd(&x, &old, &cfg, &ClusterConfig::new(3)).expect("distributed runs");
    for (a, b) in serial.loss_trace.iter().zip(&dist.loss_trace) {
        assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()), "{a} vs {b}");
    }
    assert_eq!(dist.kruskal.order(), 5);
}

#[test]
fn stress_long_distributed_stream() {
    // 8 snapshots over a 6-worker cluster: losses finite and monotone per
    // step, comm accounted every step, factors usable at the end.
    let full = random_tensor(&[36, 32, 28], 6000, 27);
    let fractions: Vec<f64> = (0..8).map(|i| 0.65 + 0.05 * i as f64).collect();
    let seq = dismastd_data::StreamSequence::cut(&full, &fractions).expect("cuts");
    let cfg = DecompConfig::default().with_rank(5).with_max_iters(4);
    let mut session = StreamingSession::new(
        cfg,
        ExecutionMode::Distributed(ClusterConfig::new(6).with_partitioner(Partitioner::Gtp)),
    );
    for snap in seq.iter() {
        let r = session.ingest(snap).expect("nested snapshots");
        assert!(r.loss.is_finite());
        let comm = r.comm.expect("distributed mode reports comm");
        assert_eq!(comm.bytes_by_sender.iter().sum::<u64>(), comm.bytes);
    }
    let k = session.factors().expect("stream ingested");
    assert_eq!(k.shape(), full.shape().to_vec());
    // Prediction works on the final model.
    let sess2 = session;
    assert!(sess2.predict(&[0, 0, 0]).expect("in range").is_finite());
}

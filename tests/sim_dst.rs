//! Deterministic-simulation (DST) suite: streaming sessions under
//! one-seed chaos with elastic membership, checked against the shadow
//! oracle after every step.
//!
//! Every scenario runs the observed session inside the virtual-time
//! simulator (`SimOptions`) with a seeded `FaultPlan` layered on top, so
//! a single u64 seed determines the scheduler interleaving, per-link
//! latencies, partition windows, and fault fates.  The acceptance
//! properties:
//!
//! 1. same seed ⇒ identical event trace and bit-identical factors;
//! 2. *different* seeds still converge to bit-identical factors — chaos
//!    may reorder the schedule but must never change the math;
//! 3. join-during-exchange, leave-during-solve, and
//!    partition-during-rebalance all pass a seed sweep with the shadow
//!    checker (bitwise vs a fault-free replica, tolerance vs the serial
//!    oracle) green after every step.
//!
//! Sweep width comes from `DISMASTD_DST_SEEDS` (default 8 locally; CI
//! runs 64).  On failure the panic message carries the seed, so any red
//! run replays exactly with `DISMASTD_DST_SEEDS` pinned and the seed
//! plugged into a one-off scenario.

use dismastd_cluster::{ClusterOptions, FaultPlan, PartitionWindow, SimOptions, SimProbe};
use dismastd_core::{ClusterConfig, DecompConfig, ExecutionMode, ShadowOracle, StreamingSession};
use dismastd_data::StreamSequence;
use dismastd_integration_tests::random_tensor;
use dismastd_tensor::TensorError;
use std::sync::Arc;
use std::time::Duration;

fn dst_cfg() -> DecompConfig {
    DecompConfig::default().with_rank(3).with_max_iters(3)
}

fn sweep_seeds() -> Vec<u64> {
    let n = std::env::var("DISMASTD_DST_SEEDS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(8);
    (0..n).collect()
}

/// Runs one 3-step streaming scenario under simulated chaos.
///
/// * `delta` — membership change requested before step `change_at`
///   (+n join, -n leave);
/// * `windows` — explicit partition windows, on top of one seeded one;
/// * `check` — replay every step through the [`ShadowOracle`].
///
/// Returns the per-step trace fingerprints and the final factor bits.
fn run_scenario(
    seed: u64,
    start_world: usize,
    delta: isize,
    change_at: usize,
    windows: &[PartitionWindow],
    check: bool,
) -> (Vec<u64>, Vec<Vec<u64>>) {
    let cfg = dst_cfg();
    let full = random_tensor(&[12, 10, 8], 400, 17);
    let seq = StreamSequence::cut(&full, &[0.6, 0.8, 1.0]).expect("cuts");

    let probe = SimProbe::new();
    let mut sim = SimOptions::from_seed(seed)
        .with_seeded_partitions(1, 200_000)
        .with_probe(Arc::clone(&probe));
    for w in windows {
        sim = sim.with_partition(*w);
    }
    let plan = FaultPlan::seeded(seed ^ 0x5EED)
        .with_message_drops(100)
        .with_duplicates(100)
        .with_delays(100, Duration::from_millis(2));
    let opts = ClusterOptions::default()
        .with_fault_plan(Arc::new(plan))
        .with_sim(sim);

    let mut observed = StreamingSession::new(
        cfg,
        ExecutionMode::Distributed(ClusterConfig::new(start_world)),
    );
    observed.set_cluster_options(opts);
    let mut oracle = ShadowOracle::new(cfg, ClusterConfig::new(start_world));

    let mut trace = Vec::new();
    for (t, snap) in seq.iter().enumerate() {
        if t == change_at {
            if delta > 0 {
                observed
                    .request_join(delta as usize)
                    .unwrap_or_else(|e| panic!("seed {seed}: join request failed: {e}"));
            } else if delta < 0 {
                observed
                    .request_leave(delta.unsigned_abs())
                    .unwrap_or_else(|e| panic!("seed {seed}: leave request failed: {e}"));
            }
        }
        observed
            .ingest(snap)
            .unwrap_or_else(|e| panic!("seed {seed}: step {t} failed under chaos: {e}"));
        trace.push(probe.fingerprint());
        if check {
            oracle
                .check_step(snap, &observed)
                .unwrap_or_else(|e| panic!("seed {seed}: shadow check failed: {e}"));
        }
    }
    let factors = observed
        .factors()
        .expect("factors after 3 steps")
        .factors()
        .iter()
        .map(|m| m.as_slice().iter().map(|v| v.to_bits()).collect())
        .collect();
    (trace, factors)
}

#[test]
fn same_seed_gives_identical_trace_and_factors() {
    let (trace_a, bits_a) = run_scenario(7, 2, 1, 1, &[], false);
    let (trace_b, bits_b) = run_scenario(7, 2, 1, 1, &[], false);
    assert_eq!(trace_a, trace_b, "same seed must replay the same schedule");
    assert_eq!(bits_a, bits_b, "same seed must replay identical factors");

    // A different seed reorders the schedule (different trace) but the
    // decomposition itself must be chaos-invariant: identical bits.
    let (trace_c, bits_c) = run_scenario(8, 2, 1, 1, &[], false);
    assert_ne!(trace_a, trace_c, "seed must drive the schedule trace");
    assert_eq!(bits_a, bits_c, "chaos must never change the math");
}

#[test]
fn join_during_exchange_survives_the_seed_sweep() {
    for seed in sweep_seeds() {
        run_scenario(seed, 2, 1, 1, &[], true);
    }
}

#[test]
fn leave_during_solve_survives_the_seed_sweep() {
    for seed in sweep_seeds() {
        run_scenario(seed, 3, -1, 1, &[], true);
    }
}

#[test]
fn partition_during_rebalance_survives_the_seed_sweep() {
    // Isolate worker 0 across the opening of the membership step — the
    // exchange that redistributes rows must ride out the outage.
    let outage = PartitionWindow {
        a: 0,
        b: usize::MAX,
        start_ns: 0,
        end_ns: 150_000,
    };
    for seed in sweep_seeds() {
        run_scenario(seed, 2, 1, 1, &[outage], true);
    }
}

// ---- checkpoint/restore across membership changes ------------------------

#[test]
fn restore_into_a_larger_world_matches_the_elastic_join() {
    let cfg = dst_cfg();
    let full = random_tensor(&[12, 10, 8], 400, 17);
    let seq = StreamSequence::cut(&full, &[0.6, 1.0]).expect("cuts");
    let snaps: Vec<_> = seq.iter().collect();

    let mut elastic = StreamingSession::new(cfg, ExecutionMode::Distributed(ClusterConfig::new(2)));
    elastic.ingest(snaps[0]).expect("step 0");
    let ckpt = elastic.to_checkpoint();

    // Path A: stay resident, grow elastically before step 1.
    elastic.request_join(1).expect("join");
    elastic.ingest(snaps[1]).expect("elastic step 1");

    // Path B: restore the step-0 checkpoint straight into the 3-worker
    // world and take the same step.
    let mut restored =
        StreamingSession::from_checkpoint_with_world(ckpt, 3).expect("restore into world 3");
    restored.ingest(snaps[1]).expect("restored step 1");

    let a = elastic.factors().expect("factors");
    let b = restored.factors().expect("factors");
    for (mode, (fa, fb)) in a.factors().iter().zip(b.factors()).enumerate() {
        let bits_a: Vec<u64> = fa.as_slice().iter().map(|v| v.to_bits()).collect();
        let bits_b: Vec<u64> = fb.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            bits_a, bits_b,
            "mode {mode}: restore-with-world must migrate to the same state the elastic join reaches"
        );
    }
}

#[test]
fn restore_with_world_rejects_zero_and_serial_mismatch() {
    let cfg = dst_cfg();
    let full = random_tensor(&[10, 9, 8], 200, 3);
    let seq = StreamSequence::cut(&full, &[1.0]).expect("cuts");

    let mut serial = StreamingSession::new(cfg, ExecutionMode::Serial);
    serial
        .ingest(seq.iter().next().expect("one snapshot"))
        .expect("ingest");
    let ckpt = serial.to_checkpoint();

    match StreamingSession::from_checkpoint_with_world(ckpt.clone(), 0) {
        Err(TensorError::InvalidArgument(msg)) => {
            assert!(msg.contains("workers"), "unexpected message: {msg}")
        }
        other => panic!("workers=0 must fail typed, got {other:?}"),
    }
    match StreamingSession::from_checkpoint_with_world(ckpt.clone(), 3) {
        Err(TensorError::InvalidArgument(msg)) => {
            assert!(msg.contains("serial"), "unexpected message: {msg}")
        }
        other => panic!("serial checkpoint into a 3-worker cluster must fail typed, got {other:?}"),
    }
    // world 1 is the identity restore for a serial checkpoint.
    StreamingSession::from_checkpoint_with_world(ckpt, 1).expect("serial -> world 1 is fine");
}

#[test]
fn membership_requests_validate_eagerly() {
    let cfg = dst_cfg();

    let mut serial = StreamingSession::new(cfg, ExecutionMode::Serial);
    assert!(
        matches!(serial.request_join(1), Err(TensorError::InvalidArgument(_))),
        "serial sessions have no cluster to grow"
    );

    let mut dist = StreamingSession::new(cfg, ExecutionMode::Distributed(ClusterConfig::new(2)));
    assert!(
        matches!(dist.request_join(0), Err(TensorError::InvalidArgument(_))),
        "zero-count changes are meaningless"
    );
    assert!(
        matches!(dist.request_leave(2), Err(TensorError::InvalidArgument(_))),
        "the cluster can never drop below one worker"
    );
    // A valid queue is visible until the next ingest applies it.
    dist.request_join(2).expect("join 2");
    dist.request_leave(1).expect("leave 1 of the queued 4");
    assert_eq!(dist.pending_membership().len(), 2);
}

//! Deterministic-simulation (DST) suite: streaming sessions under
//! one-seed chaos with elastic membership, checked against the shadow
//! oracle after every step.
//!
//! Every scenario runs the observed session inside the virtual-time
//! simulator (`SimOptions`) with a seeded `FaultPlan` layered on top, so
//! a single u64 seed determines the scheduler interleaving, per-link
//! latencies, partition windows, and fault fates.  The acceptance
//! properties:
//!
//! 1. same seed ⇒ identical event trace and bit-identical factors;
//! 2. *different* seeds still converge to bit-identical factors — chaos
//!    may reorder the schedule but must never change the math;
//! 3. join-during-exchange, leave-during-solve, and
//!    partition-during-rebalance all pass a seed sweep with the shadow
//!    checker (bitwise vs a fault-free replica, tolerance vs the serial
//!    oracle) green after every step.
//!
//! Sweep width comes from `DISMASTD_DST_SEEDS` (default 8 locally; CI
//! runs 64).  On failure the panic message carries the seed, so any red
//! run replays exactly with `DISMASTD_DST_SEEDS` pinned and the seed
//! plugged into a one-off scenario.

use dismastd_cluster::{ClusterOptions, FaultPlan, PartitionWindow, SimOptions, SimProbe};
use dismastd_core::{
    ClusterConfig, DecompConfig, ExecutionMode, HealPolicy, HealTransition, ShadowOracle,
    StepReport, StreamingSession, ThreadPolicy, VirtualClock,
};
use dismastd_data::StreamSequence;
use dismastd_integration_tests::random_tensor;
use dismastd_tensor::TensorError;
use std::sync::Arc;
use std::time::Duration;

fn dst_cfg() -> DecompConfig {
    DecompConfig::default().with_rank(3).with_max_iters(3)
}

fn sweep_seeds() -> Vec<u64> {
    let n = std::env::var("DISMASTD_DST_SEEDS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(8);
    (0..n).collect()
}

/// Runs one 3-step streaming scenario under simulated chaos.
///
/// * `delta` — membership change requested before step `change_at`
///   (+n join, -n leave);
/// * `windows` — explicit partition windows, on top of one seeded one;
/// * `check` — replay every step through the [`ShadowOracle`].
///
/// Returns the per-step trace fingerprints and the final factor bits.
fn run_scenario(
    seed: u64,
    start_world: usize,
    delta: isize,
    change_at: usize,
    windows: &[PartitionWindow],
    check: bool,
) -> (Vec<u64>, Vec<Vec<u64>>) {
    let cfg = dst_cfg();
    let full = random_tensor(&[12, 10, 8], 400, 17);
    let seq = StreamSequence::cut(&full, &[0.6, 0.8, 1.0]).expect("cuts");

    let probe = SimProbe::new();
    let mut sim = SimOptions::from_seed(seed)
        .with_seeded_partitions(1, 200_000)
        .with_probe(Arc::clone(&probe));
    for w in windows {
        sim = sim.with_partition(*w);
    }
    let plan = FaultPlan::seeded(seed ^ 0x5EED)
        .with_message_drops(100)
        .with_duplicates(100)
        .with_delays(100, Duration::from_millis(2));
    let opts = ClusterOptions::default()
        .with_fault_plan(Arc::new(plan))
        .with_sim(sim);

    let mut observed = StreamingSession::new(
        cfg,
        ExecutionMode::Distributed(ClusterConfig::new(start_world)),
    );
    observed.set_cluster_options(opts);
    let mut oracle = ShadowOracle::new(cfg, ClusterConfig::new(start_world));

    let mut trace = Vec::new();
    for (t, snap) in seq.iter().enumerate() {
        if t == change_at {
            if delta > 0 {
                observed
                    .request_join(delta as usize)
                    .unwrap_or_else(|e| panic!("seed {seed}: join request failed: {e}"));
            } else if delta < 0 {
                observed
                    .request_leave(delta.unsigned_abs())
                    .unwrap_or_else(|e| panic!("seed {seed}: leave request failed: {e}"));
            }
        }
        observed
            .ingest(snap)
            .unwrap_or_else(|e| panic!("seed {seed}: step {t} failed under chaos: {e}"));
        trace.push(probe.fingerprint());
        if check {
            oracle
                .check_step(snap, &observed)
                .unwrap_or_else(|e| panic!("seed {seed}: shadow check failed: {e}"));
        }
    }
    let factors = observed
        .factors()
        .expect("factors after 3 steps")
        .factors()
        .iter()
        .map(|m| m.as_slice().iter().map(|v| v.to_bits()).collect())
        .collect();
    (trace, factors)
}

#[test]
fn same_seed_gives_identical_trace_and_factors() {
    let (trace_a, bits_a) = run_scenario(7, 2, 1, 1, &[], false);
    let (trace_b, bits_b) = run_scenario(7, 2, 1, 1, &[], false);
    assert_eq!(trace_a, trace_b, "same seed must replay the same schedule");
    assert_eq!(bits_a, bits_b, "same seed must replay identical factors");

    // A different seed reorders the schedule (different trace) but the
    // decomposition itself must be chaos-invariant: identical bits.
    let (trace_c, bits_c) = run_scenario(8, 2, 1, 1, &[], false);
    assert_ne!(trace_a, trace_c, "seed must drive the schedule trace");
    assert_eq!(bits_a, bits_c, "chaos must never change the math");
}

#[test]
fn thread_pool_size_never_changes_the_factor_bits() {
    // The intra-worker kernel pools chunk by row-disjoint run ranges, so
    // the lane count is purely a throughput knob — the distributed
    // factors must be bit-identical at every thread count.  `Fixed` pins
    // the count directly (it ignores `DISMASTD_THREADS`), so this test
    // cannot race other tests over the environment; the CI matrix covers
    // the env-var path by running the whole suite under
    // `DISMASTD_THREADS={1,4}`.
    let run = |threads: ThreadPolicy| {
        let cfg = dst_cfg().with_threads(threads);
        let full = random_tensor(&[12, 10, 8], 400, 17);
        let seq = StreamSequence::cut(&full, &[0.6, 0.8, 1.0]).expect("cuts");
        let opts = ClusterOptions::default().with_sim(SimOptions::from_seed(11));
        let mut observed =
            StreamingSession::new(cfg, ExecutionMode::Distributed(ClusterConfig::new(2)));
        observed.set_cluster_options(opts);
        let mut oracle = ShadowOracle::new(cfg, ClusterConfig::new(2));
        for (t, snap) in seq.iter().enumerate() {
            observed
                .ingest(snap)
                .unwrap_or_else(|e| panic!("threads {threads:?}: step {t} failed: {e}"));
            oracle
                .check_step(snap, &observed)
                .unwrap_or_else(|e| panic!("threads {threads:?}: shadow check failed: {e}"));
        }
        let bits: Vec<Vec<u64>> = observed
            .factors()
            .expect("factors after 3 steps")
            .factors()
            .iter()
            .map(|m| m.as_slice().iter().map(|v| v.to_bits()).collect())
            .collect();
        bits
    };
    // Fixed(4) over a 2-rank world gives each rank a 2-lane pool (and the
    // driver a 4-lane build pool), so the pooled paths genuinely run.
    let serial = run(ThreadPolicy::Fixed(1));
    let pooled = run(ThreadPolicy::Fixed(4));
    assert_eq!(serial, pooled, "thread count must never change factor bits");
}

#[test]
fn join_during_exchange_survives_the_seed_sweep() {
    for seed in sweep_seeds() {
        run_scenario(seed, 2, 1, 1, &[], true);
    }
}

#[test]
fn leave_during_solve_survives_the_seed_sweep() {
    for seed in sweep_seeds() {
        run_scenario(seed, 3, -1, 1, &[], true);
    }
}

#[test]
fn partition_during_rebalance_survives_the_seed_sweep() {
    // Isolate worker 0 across the opening of the membership step — the
    // exchange that redistributes rows must ride out the outage.
    let outage = PartitionWindow {
        a: 0,
        b: usize::MAX,
        start_ns: 0,
        end_ns: 150_000,
    };
    for seed in sweep_seeds() {
        run_scenario(seed, 2, 1, 1, &[outage], true);
    }
}

// ---- checkpoint/restore across membership changes ------------------------

#[test]
fn restore_into_a_larger_world_matches_the_elastic_join() {
    let cfg = dst_cfg();
    let full = random_tensor(&[12, 10, 8], 400, 17);
    let seq = StreamSequence::cut(&full, &[0.6, 1.0]).expect("cuts");
    let snaps: Vec<_> = seq.iter().collect();

    let mut elastic = StreamingSession::new(cfg, ExecutionMode::Distributed(ClusterConfig::new(2)));
    elastic.ingest(snaps[0]).expect("step 0");
    let ckpt = elastic.to_checkpoint();

    // Path A: stay resident, grow elastically before step 1.
    elastic.request_join(1).expect("join");
    elastic.ingest(snaps[1]).expect("elastic step 1");

    // Path B: restore the step-0 checkpoint straight into the 3-worker
    // world and take the same step.
    let mut restored =
        StreamingSession::from_checkpoint_with_world(ckpt, 3).expect("restore into world 3");
    restored.ingest(snaps[1]).expect("restored step 1");

    let a = elastic.factors().expect("factors");
    let b = restored.factors().expect("factors");
    for (mode, (fa, fb)) in a.factors().iter().zip(b.factors()).enumerate() {
        let bits_a: Vec<u64> = fa.as_slice().iter().map(|v| v.to_bits()).collect();
        let bits_b: Vec<u64> = fb.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            bits_a, bits_b,
            "mode {mode}: restore-with-world must migrate to the same state the elastic join reaches"
        );
    }
}

#[test]
fn restore_with_world_rejects_zero_and_serial_mismatch() {
    let cfg = dst_cfg();
    let full = random_tensor(&[10, 9, 8], 200, 3);
    let seq = StreamSequence::cut(&full, &[1.0]).expect("cuts");

    let mut serial = StreamingSession::new(cfg, ExecutionMode::Serial);
    serial
        .ingest(seq.iter().next().expect("one snapshot"))
        .expect("ingest");
    let ckpt = serial.to_checkpoint();

    match StreamingSession::from_checkpoint_with_world(ckpt.clone(), 0) {
        Err(TensorError::InvalidArgument(msg)) => {
            assert!(msg.contains("workers"), "unexpected message: {msg}")
        }
        other => panic!("workers=0 must fail typed, got {other:?}"),
    }
    match StreamingSession::from_checkpoint_with_world(ckpt.clone(), 3) {
        Err(TensorError::InvalidArgument(msg)) => {
            assert!(msg.contains("serial"), "unexpected message: {msg}")
        }
        other => panic!("serial checkpoint into a 3-worker cluster must fail typed, got {other:?}"),
    }
    // world 1 is the identity restore for a serial checkpoint.
    StreamingSession::from_checkpoint_with_world(ckpt, 1).expect("serial -> world 1 is fine");
}

// ---- supervised crash-and-rejoin (the `heal_` sweep; CI runs it as its
// ---- own matrix entry) ---------------------------------------------------

/// Heal policy for the sweeps: seeded backoff spent through a virtual
/// clock, so the exponential ladder costs zero wall-clock.
fn heal_policy(seed: u64) -> HealPolicy {
    HealPolicy::default()
        .with_backoff_seed(seed)
        .with_clock(Arc::new(VirtualClock::new()))
}

fn final_bits(s: &StreamingSession) -> Vec<Vec<u64>> {
    s.factors()
        .expect("factors after the stream")
        .factors()
        .iter()
        .map(|m| m.as_slice().iter().map(|v| v.to_bits()).collect())
        .collect()
}

/// Runs the 3-step stream with `ingest_with_heal`, arming `chaos` (layered
/// on the seed's simulator) before step `crash_step`.  With `join_at`, one
/// worker joins right before the crash step, so the heal replays race an
/// in-flight membership change.  Panics (with the seed) if any step fails
/// to heal or the shadow oracle disagrees.
fn run_heal_scenario(
    seed: u64,
    start_world: usize,
    crash_step: usize,
    join_at: bool,
    chaos: impl Fn(SimOptions) -> ClusterOptions,
) -> (Vec<StepReport>, Vec<Vec<u64>>) {
    let cfg = dst_cfg();
    let full = random_tensor(&[12, 10, 8], 400, 17);
    let seq = StreamSequence::cut(&full, &[0.6, 0.8, 1.0]).expect("cuts");

    let mut observed = StreamingSession::new(
        cfg,
        ExecutionMode::Distributed(ClusterConfig::new(start_world)),
    );
    observed.set_cluster_options(ClusterOptions::default().with_sim(SimOptions::from_seed(seed)));
    observed.set_heal_policy(heal_policy(seed));
    let mut oracle = ShadowOracle::new(cfg, ClusterConfig::new(start_world));

    let mut reports = Vec::new();
    for (t, snap) in seq.iter().enumerate() {
        if t == crash_step {
            if join_at {
                observed
                    .request_join(1)
                    .unwrap_or_else(|e| panic!("seed {seed}: join request failed: {e}"));
            }
            observed.set_cluster_options(chaos(SimOptions::from_seed(seed)));
        }
        let report = observed
            .ingest_with_heal(snap)
            .unwrap_or_else(|e| panic!("seed {seed}: step {t} failed to heal: {e}"));
        reports.push(report);
        oracle
            .check_step(snap, &observed)
            .unwrap_or_else(|e| panic!("seed {seed}: shadow check failed after heal: {e}"));
    }
    (reports, final_bits(&observed))
}

/// A fault-free reference run of the same stream: `start_world` workers,
/// optionally shrunk/grown by `delta` before step `change_at`.
fn clean_reference(start_world: usize, delta: isize, change_at: usize) -> Vec<Vec<u64>> {
    let cfg = dst_cfg();
    let full = random_tensor(&[12, 10, 8], 400, 17);
    let seq = StreamSequence::cut(&full, &[0.6, 0.8, 1.0]).expect("cuts");
    let mut s = StreamingSession::new(
        cfg,
        ExecutionMode::Distributed(ClusterConfig::new(start_world)),
    );
    for (t, snap) in seq.iter().enumerate() {
        if t == change_at {
            if delta > 0 {
                s.request_join(delta as usize).expect("join");
            } else if delta < 0 {
                s.request_leave(delta.unsigned_abs()).expect("leave");
            }
        }
        s.ingest(snap).expect("clean reference step");
    }
    final_bits(&s)
}

/// A worker crashes early in the step (first exchange); the supervisor
/// respawns it from the pre-step checkpoint and the healed stream is
/// bit-identical to a fault-free run at the same world — without the
/// caller ever seeing an error.
#[test]
fn heal_crash_during_exchange_survives_the_seed_sweep() {
    let clean = clean_reference(3, 0, usize::MAX);
    for seed in sweep_seeds() {
        let (reports, bits) = run_heal_scenario(seed, 3, 1, false, |sim| {
            ClusterOptions::default().with_sim(sim.with_crash_and_rejoin(1, 2, 0))
        });
        let heal = reports[1].heal.as_ref().expect("heal report on step 1");
        assert_eq!(heal.respawns, 1, "seed {seed}: one respawn heals the crash");
        assert!(heal.backoff_ns > 0, "seed {seed}: backoff must be spent");
        assert!(!heal.degraded, "seed {seed}: no degradation needed");
        assert_eq!(
            reports[1].retries, 1,
            "seed {seed}: retries mirrors respawns"
        );
        assert_eq!(
            bits, clean,
            "seed {seed}: healed factors must be bit-identical to a fault-free run"
        );
    }
}

/// The crash lands late in the step (inside the ALS solve iterations);
/// same contract.
#[test]
fn heal_crash_during_solve_survives_the_seed_sweep() {
    let clean = clean_reference(3, 0, usize::MAX);
    for seed in sweep_seeds() {
        let (reports, bits) = run_heal_scenario(seed, 3, 1, false, |sim| {
            ClusterOptions::default().with_sim(sim.with_crash_and_rejoin(2, 9, 0))
        });
        let heal = reports[1].heal.as_ref().expect("heal report on step 1");
        assert_eq!(heal.respawns, 1, "seed {seed}");
        assert_eq!(
            bits, clean,
            "seed {seed}: healed factors must be bit-identical to a fault-free run"
        );
    }
}

/// The same rank dies twice (the crash survives the first replay); the
/// default budget of two respawns absorbs both.
#[test]
fn heal_double_crash_of_the_same_rank_survives_the_seed_sweep() {
    let clean = clean_reference(3, 0, usize::MAX);
    for seed in sweep_seeds() {
        let (reports, bits) = run_heal_scenario(seed, 3, 1, false, |sim| {
            ClusterOptions::default()
                .with_sim(sim)
                .with_fault_plan(Arc::new(
                    FaultPlan::seeded(seed ^ 0xDEAD).crash_worker_at_collective_times(1, 3, 2),
                ))
        });
        let heal = reports[1].heal.as_ref().expect("heal report on step 1");
        assert_eq!(
            heal.respawns, 2,
            "seed {seed}: both crashes must be respawned through"
        );
        assert!(!heal.degraded, "seed {seed}");
        assert_eq!(bits, clean, "seed {seed}: bit-identical after double heal");
    }
}

/// The crash races an **in-flight membership change**: a join is queued
/// for the same step the crash fires in.  The join is applied at the step
/// boundary before the rollback checkpoint is taken, so every replay
/// re-runs in the already-grown world and the result matches a fault-free
/// elastic join.
#[test]
fn heal_crash_during_membership_change_survives_the_seed_sweep() {
    let clean = clean_reference(2, 1, 1);
    for seed in sweep_seeds() {
        let (reports, bits) = run_heal_scenario(seed, 2, 1, true, |sim| {
            ClusterOptions::default().with_sim(sim.with_crash_and_rejoin(1, 2, 0))
        });
        let heal = reports[1].heal.as_ref().expect("heal report on step 1");
        assert!(heal.respawns >= 1, "seed {seed}");
        assert_eq!(
            bits, clean,
            "seed {seed}: heal must preserve the in-flight join's outcome"
        );
    }
}

/// A rank that keeps dying exhausts its respawn budget; instead of
/// failing, the supervisor falls back to a **degraded world** — the
/// stream continues at reduced parallelism with a typed transition on the
/// report, and the shadow oracle stays green across the shrink.
#[test]
fn heal_budget_exhaustion_degrades_instead_of_failing() {
    // The departing rank is the highest (world 3 -> 2 drops rank 2), so
    // after the shrink the armed crash has no rank to fire on.
    let clean = clean_reference(3, -1, 1);
    for seed in sweep_seeds() {
        let cfg = dst_cfg();
        let full = random_tensor(&[12, 10, 8], 400, 17);
        let seq = StreamSequence::cut(&full, &[0.6, 0.8, 1.0]).expect("cuts");

        let mut observed =
            StreamingSession::new(cfg, ExecutionMode::Distributed(ClusterConfig::new(3)));
        observed
            .set_cluster_options(ClusterOptions::default().with_sim(SimOptions::from_seed(seed)));
        observed.set_heal_policy(heal_policy(seed).with_max_respawns(1));
        let mut oracle = ShadowOracle::new(cfg, ClusterConfig::new(3));

        let mut reports = Vec::new();
        for (t, snap) in seq.iter().enumerate() {
            if t == 1 {
                // Rank 2 dies at its 3rd collective on every attempt.
                observed.set_cluster_options(
                    ClusterOptions::default()
                        .with_sim(SimOptions::from_seed(seed))
                        .with_fault_plan(Arc::new(
                            FaultPlan::seeded(seed ^ 0xFA11).crash_worker_at_collective_times(
                                2,
                                3,
                                u32::MAX,
                            ),
                        )),
                );
            }
            let report = observed
                .ingest_with_heal(snap)
                .unwrap_or_else(|e| panic!("seed {seed}: step {t} must degrade, not fail: {e}"));
            reports.push(report);
            oracle
                .check_step(snap, &observed)
                .unwrap_or_else(|e| panic!("seed {seed}: shadow check failed: {e}"));
        }

        let heal = reports[1].heal.as_ref().expect("heal report on step 1");
        assert!(heal.degraded, "seed {seed}: the step must degrade");
        assert_eq!(
            heal.transitions,
            vec![HealTransition::Degraded {
                from_world: 3,
                to_world: 2,
            }],
            "seed {seed}: exactly one typed degradation"
        );
        assert_eq!(heal.respawns, 1, "seed {seed}: the budget was spent first");
        match observed.mode() {
            ExecutionMode::Distributed(cc) => {
                assert_eq!(
                    cc.workers, 2,
                    "seed {seed}: the stream continues at world 2"
                )
            }
            other => panic!("seed {seed}: expected distributed mode, got {other:?}"),
        }
        assert_eq!(
            final_bits(&observed),
            clean,
            "seed {seed}: the degraded stream must match a voluntary leave at the same step"
        );
    }
}

/// When degradation is disabled the exhausted ladder surfaces a typed
/// `ClusterFault` annotated with the heal history — not a hang, not a
/// panic — and the session stays usable on its rolled-back state.
#[test]
fn heal_ladder_exhaustion_is_a_typed_error() {
    let cfg = dst_cfg();
    let full = random_tensor(&[12, 10, 8], 400, 17);
    let seq = StreamSequence::cut(&full, &[0.6, 1.0]).expect("cuts");
    let snaps: Vec<_> = seq.iter().collect();

    let mut sess = StreamingSession::new(cfg, ExecutionMode::Distributed(ClusterConfig::new(2)));
    sess.ingest(snaps[0]).expect("clean step 0");
    sess.set_heal_policy(heal_policy(5).with_max_respawns(1).with_degraded(false));
    sess.set_cluster_options(
        ClusterOptions::default()
            .with_sim(SimOptions::from_seed(5))
            .with_fault_plan(Arc::new(
                FaultPlan::seeded(5).crash_worker_at_collective_times(1, 2, u32::MAX),
            )),
    );
    match sess.ingest_with_heal(snaps[1]) {
        Err(TensorError::ClusterFault { rank, detail }) => {
            assert_eq!(rank, Some(1), "the fault stays attributed");
            assert!(
                detail.contains("heal ladder exhausted"),
                "the error carries the heal history: {detail}"
            );
        }
        other => panic!("expected a typed ClusterFault, got {other:?}"),
    }
    // The rolled-back session still works once the chaos is lifted.
    sess.set_cluster_options(ClusterOptions::default());
    sess.ingest(snaps[1]).expect("post-give-up step");
}

// ---- restore_with_world / from_checkpoint_with_world error paths ---------

#[test]
fn restore_with_world_file_error_paths_are_typed() {
    let dir = std::env::temp_dir();

    // Missing file.
    let missing = dir.join("dismastd_dst_no_such_ckpt.json");
    let _ = std::fs::remove_file(&missing);
    match StreamingSession::restore_with_world(&missing, 2) {
        Err(TensorError::InvalidArgument(msg)) => {
            assert!(msg.contains("checkpoint read"), "unexpected message: {msg}")
        }
        other => panic!("missing checkpoint must fail typed, got {other:?}"),
    }

    // Corrupt JSON.
    let corrupt = dir.join("dismastd_dst_corrupt_ckpt.json");
    std::fs::write(&corrupt, b"{\"cfg\": not json").expect("write corrupt file");
    match StreamingSession::restore_with_world(&corrupt, 2) {
        Err(TensorError::InvalidArgument(msg)) => {
            assert!(
                msg.contains("checkpoint decode"),
                "unexpected message: {msg}"
            )
        }
        other => panic!("corrupt checkpoint must fail typed, got {other:?}"),
    }
    let _ = std::fs::remove_file(&corrupt);

    // A real checkpoint file, restored with invalid world sizes.
    let cfg = dst_cfg();
    let full = random_tensor(&[10, 9, 8], 200, 3);
    let seq = StreamSequence::cut(&full, &[1.0]).expect("cuts");
    let mut serial = StreamingSession::new(cfg, ExecutionMode::Serial);
    serial
        .ingest(seq.iter().next().expect("one snapshot"))
        .expect("ingest");
    let valid = dir.join("dismastd_dst_serial_ckpt.json");
    serial.checkpoint(&valid).expect("write checkpoint");

    match StreamingSession::restore_with_world(&valid, 0) {
        Err(TensorError::InvalidArgument(msg)) => {
            assert!(msg.contains("workers"), "unexpected message: {msg}")
        }
        other => panic!("workers=0 from file must fail typed, got {other:?}"),
    }
    match StreamingSession::restore_with_world(&valid, 3) {
        Err(TensorError::InvalidArgument(msg)) => {
            assert!(msg.contains("serial"), "unexpected message: {msg}")
        }
        other => panic!("serial->3 from file must fail typed, got {other:?}"),
    }
    // The identity restore from the same file stays fine.
    StreamingSession::restore_with_world(&valid, 1).expect("serial -> world 1");
    let _ = std::fs::remove_file(&valid);
}

#[test]
fn membership_requests_validate_eagerly() {
    let cfg = dst_cfg();

    let mut serial = StreamingSession::new(cfg, ExecutionMode::Serial);
    assert!(
        matches!(serial.request_join(1), Err(TensorError::InvalidArgument(_))),
        "serial sessions have no cluster to grow"
    );

    let mut dist = StreamingSession::new(cfg, ExecutionMode::Distributed(ClusterConfig::new(2)));
    assert!(
        matches!(dist.request_join(0), Err(TensorError::InvalidArgument(_))),
        "zero-count changes are meaningless"
    );
    assert!(
        matches!(dist.request_leave(2), Err(TensorError::InvalidArgument(_))),
        "the cluster can never drop below one worker"
    );
    // A valid queue is visible until the next ingest applies it.
    dist.request_join(2).expect("join 2");
    dist.request_leave(1).expect("leave 1 of the queued 4");
    assert_eq!(dist.pending_membership().len(), 2);
}

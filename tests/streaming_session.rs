//! Streaming-session behaviour across execution modes and longer horizons.

use dismastd_core::{ClusterConfig, DecompConfig, ExecutionMode, StreamingSession};
use dismastd_data::StreamSequence;
use dismastd_integration_tests::random_tensor;
use dismastd_partition::Partitioner;

fn cfg() -> DecompConfig {
    DecompConfig::default().with_rank(4).with_max_iters(6)
}

#[test]
fn serial_and_distributed_sessions_agree_on_loss() {
    let full = random_tensor(&[25, 20, 15], 1200, 1);
    let seq = StreamSequence::cut(&full, &StreamSequence::paper_fractions()).expect("cuts");

    let mut serial = StreamingSession::new(cfg(), ExecutionMode::Serial);
    let mut dist = StreamingSession::new(cfg(), ExecutionMode::Distributed(ClusterConfig::new(3)));
    for snap in seq.iter() {
        let rs = serial.ingest(snap).expect("serial ingest");
        let rd = dist.ingest(snap).expect("distributed ingest");
        assert!(
            (rs.loss - rd.loss).abs() < 1e-5 * (1.0 + rs.loss.abs()),
            "step {}: serial {} vs distributed {}",
            rs.step,
            rs.loss,
            rd.loss
        );
        assert!((rs.fit - rd.fit).abs() < 1e-5);
    }
}

#[test]
fn long_streaming_horizon_stays_stable() {
    // 10 snapshots; losses and fits stay finite, shapes grow, and the
    // processed nnz stays well below the full snapshot after warm-up.
    let full = random_tensor(&[40, 35, 30], 4000, 2);
    let fractions: Vec<f64> = (0..10).map(|i| 0.55 + 0.05 * i as f64).collect();
    let seq = StreamSequence::cut(&full, &fractions).expect("cuts");
    let mut session = StreamingSession::new(cfg(), ExecutionMode::Serial);
    for (t, snap) in seq.iter().enumerate() {
        let r = session.ingest(snap).expect("nested");
        assert!(r.loss.is_finite() && r.fit.is_finite());
        if t > 0 {
            assert!(
                r.processed_nnz < r.snapshot_nnz,
                "step {t} processed everything"
            );
        }
    }
    assert_eq!(session.steps(), 10);
}

#[test]
fn both_partitioners_work_in_sessions() {
    let full = random_tensor(&[20, 18, 16], 900, 3);
    let seq = StreamSequence::cut(&full, &[0.8, 1.0]).expect("cuts");
    for p in [Partitioner::Gtp, Partitioner::Mtp] {
        let mut session = StreamingSession::new(
            cfg(),
            ExecutionMode::Distributed(ClusterConfig::new(4).with_partitioner(p)),
        );
        for snap in seq.iter() {
            let r = session.ingest(snap).expect("ingest");
            assert!(r.comm.is_some(), "{p:?} must report comm stats");
        }
    }
}

#[test]
fn streaming_beats_recompute_in_processed_volume() {
    // The headline DisMASTD claim, in its volume form: over a stream, the
    // total nonzeros processed by DTD is far less than what re-computation
    // processes (which is Σ_t nnz(X^t)).
    let full = random_tensor(&[30, 30, 30], 3000, 4);
    let seq = StreamSequence::cut(&full, &StreamSequence::paper_fractions()).expect("cuts");
    let mut session = StreamingSession::new(cfg(), ExecutionMode::Serial);
    let mut processed_total = 0usize;
    let mut recompute_total = 0usize;
    for snap in seq.iter() {
        let r = session.ingest(snap).expect("nested");
        processed_total += r.processed_nnz;
        recompute_total += snap.nnz();
    }
    // DisMASTD processes each nonzero exactly once (when it first appears);
    // re-computation processes the 75% core six times over.
    assert_eq!(processed_total, full.nnz());
    assert!(
        recompute_total > 3 * processed_total,
        "{recompute_total} vs {processed_total}"
    );
}

#[test]
fn empty_growth_step_is_harmless() {
    let full = random_tensor(&[10, 10, 10], 300, 5);
    let mut session = StreamingSession::new(cfg(), ExecutionMode::Serial);
    session.ingest(&full).expect("cold start");
    // Same snapshot again: zero complement.
    let r = session.ingest(&full).expect("idempotent ingest");
    assert_eq!(r.processed_nnz, 0);
    assert!(r.loss.is_finite());
}

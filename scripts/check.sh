#!/usr/bin/env bash
# Repo gate: formatting, lints, build, tests.  Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
# Short recv backstop: a hang in a test is a bug, not something to wait
# 30s for.  Suites that legitimately need longer (or no) backstops opt
# out per-run via ClusterOptions.
export DISMASTD_TEST_TIMEOUT_MS=10000
cargo test -q

echo "==> stress suites (numerics robustness + fault injection + recovery + observability)"
cargo test -q -p dismastd-integration-tests --test numerics_robustness --test fault_injection \
  --test observability

echo "==> pooled kernels at DISMASTD_THREADS=4 (factor bits must not move)"
# The kernel pool honours DISMASTD_THREADS when the config says Auto; the
# tensor suite's pooled-vs-serial proptests and the observability suite's
# dropped-recording assertions are the ones a thread-count bug would trip.
# CI additionally runs this whole script under a threads={1,4} matrix.
DISMASTD_THREADS=4 cargo test -q -p dismastd-tensor
DISMASTD_THREADS=4 cargo test -q -p dismastd-integration-tests --test observability

echo "==> deterministic-simulation smoke sweep (16 seeds; CI runs 64)"
# One u64 seed drives scheduler interleaving, link latency, partitions,
# and fault fates; a failing seed is printed in the panic and replays
# bit-for-bit.
DISMASTD_DST_SEEDS=16 cargo test -q -p dismastd-integration-tests --test sim_dst

echo "==> barrier crash races on SimNet seeds (loom scenarios, ordinary build)"
DISMASTD_DST_SEEDS=16 cargo test -q -p dismastd-cluster --test sim_barrier_crash

echo "==> example smoke run (miniature end-to-end pipeline)"
DISMASTD_SMOKE=1 cargo run -q --release -p dismastd-examples --bin quickstart > /dev/null

echo "==> collectives smoke (allreduce algos + comm policies -> bench_results/collectives.json)"
cargo run -q --release -p dismastd-bench --bin collectives_smoke > /dev/null

echo "==> invariant lints (dismastd-xtask: panic-path, determinism, span-taxonomy, error-hygiene, clock-hygiene)"
# Replaces the old sed/grep panic audits, which hand-listed files and
# stopped reading at the first inline test module.  The xtask lexes every
# crate in its scope table, exempts test regions structurally, and also
# enforces determinism (no hash-order or wall-clock dependence on the
# bit-identical factor path), the obs span taxonomy, and error hygiene.
# Deliberate panics carry a `// lint:allow(<name>): <reason>` directive.
cargo run -q -p dismastd-xtask -- lint

echo "==> interprocedural audits (dismastd-xtask: collective-order, panic-budget, alloc-hygiene)"
# Whole-workspace call graph on the same lexer: no collective reachable
# from worker_body under a rank-conditioned branch (L6), the transitive
# panic surface of public APIs pinned against crates/xtask/panic_budget.txt
# (L7 — growth fails; refresh with `analyze --write-budget` after review),
# and no allocating call reachable from the steady-state MTTKRP / gram /
# exchange kernels (L8).
cargo run -q -p dismastd-xtask -- analyze

echo "==> steady-state allocation count (count-alloc feature: zero allocations after warm-up)"
# The dynamic twin of L8: a counting global allocator measures a full
# gram -> all-reduce -> row-exchange round on every rank after the pools
# warm up; the budget is exactly zero.
cargo test -q -p dismastd-integration-tests --features count-alloc --test steady_state_alloc

echo "All checks passed."

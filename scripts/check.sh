#!/usr/bin/env bash
# Repo gate: formatting, lints, build, tests.  Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "==> stress suites (numerics robustness + fault injection + recovery + observability)"
cargo test -q -p dismastd-integration-tests --test numerics_robustness --test fault_injection \
  --test observability

echo "==> example smoke run (miniature end-to-end pipeline)"
DISMASTD_SMOKE=1 cargo run -q --release -p dismastd-examples --bin quickstart > /dev/null

echo "==> panic audit: no infallible unwraps on cluster receive paths"
# Cross-worker conditions (a peer's payload, a peer's liveness) must flow
# through typed errors, never through expect/unwrap panics.  Audit the
# non-test portion of the comm-facing sources for the known-bad patterns.
audit_failed=0
for f in crates/cluster/src/runtime.rs crates/cluster/src/comm.rs crates/core/src/distributed.rs; do
  # Only the code before the test module is public runtime surface.
  if sed '/#\[cfg(test)\]/q' "$f" \
    | grep -nE '\.recv\(\)\s*\.expect\(|\.join\(\)\s*\.expect\(|\.into_f64\(\)|\.into_u64\(\)' ; then
    echo "panic-prone cross-worker pattern in $f (see match above)"
    audit_failed=1
  fi
done
[ "$audit_failed" -eq 0 ] || exit 1

echo "==> panic audit: no unwrap/expect on solve & ingest paths"
# The robustness layer promises typed errors (Singular, NonFinitePivot,
# NonFiniteValue, Diverged) instead of panics anywhere a degraded input
# can reach.  Audit the non-test portion of the numeric kernels and the
# session/ingest surface; doc-comment examples (///) are exempt.
for f in crates/tensor/src/linalg.rs crates/tensor/src/robust.rs \
         crates/tensor/src/coo.rs crates/core/src/als.rs \
         crates/core/src/dtd.rs crates/core/src/session.rs \
         crates/core/src/distributed.rs \
         crates/data/src/io.rs crates/data/src/stream.rs \
         crates/data/src/synth.rs \
         crates/partition/src/gtp.rs crates/partition/src/grid.rs \
         crates/partition/src/mtp.rs crates/partition/src/optimal.rs \
         crates/partition/src/stats.rs crates/partition/src/lib.rs; do
  if sed '/#\[cfg(test)\]/q' "$f" \
    | grep -nE '\.unwrap\(\)|\.expect\(' \
    | grep -vE '^[0-9]+:\s*//' ; then
    echo "unwrap/expect in non-test solve/ingest code in $f (see match above)"
    audit_failed=1
  fi
done
[ "$audit_failed" -eq 0 ] || exit 1

echo "All checks passed."

#!/usr/bin/env bash
# ThreadSanitizer audit: runs the cluster runtime's unit tests and the
# fault-injection chaos suite under TSan.
#
# Prerequisites: a nightly toolchain (TSan is `-Z sanitizer=thread`) and
# the rust-src component (`-Z build-std` instruments std itself — without
# it TSan cannot see std's synchronization and reports guaranteed false
# positives).  Missing prerequisites are reported and skipped with exit 0
# so the allowed-to-fail CI job stays meaningful: a non-zero exit from
# this script is a real data-race report, never a toolchain gap.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! cargo +nightly --version >/dev/null 2>&1; then
  echo "tsan: SKIP — nightly toolchain not installed"
  echo "tsan:        rustup toolchain install nightly"
  exit 0
fi

if ! rustup component list --toolchain nightly 2>/dev/null \
    | grep -q '^rust-src.*(installed)'; then
  echo "tsan: SKIP — rust-src component missing on nightly (an uninstrumented"
  echo "tsan:        std guarantees false positives under TSan)"
  echo "tsan:        rustup component add rust-src --toolchain nightly"
  exit 0
fi

host="$(rustc +nightly -vV | sed -n 's/^host: //p')"
export RUSTFLAGS="-Z sanitizer=thread"
export RUSTDOCFLAGS="-Z sanitizer=thread"
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"

echo "tsan: cluster runtime unit tests ($host)"
cargo +nightly test -Z build-std --target "$host" -q -p dismastd-cluster --lib

echo "tsan: fault-injection chaos suite ($host)"
cargo +nightly test -Z build-std --target "$host" -q \
  -p dismastd-integration-tests --test fault_injection

echo "tsan: clean"
